#include "explain/analyzer.hpp"

#include <algorithm>
#include <unordered_map>

#include "explain/trace_reader.hpp"

namespace waveck::explain {

namespace {

constexpr std::size_t kMaxStoredWarnings = 50;

/// Mutable analyzer state around one CheckTree: the branch accumulators are
/// working storage the final tree does not need.
struct OpenCheck {
  std::size_t index;  // into TraceAnalysis::checks
  bool open = true;
  /// Gate evals since a decision opened or last flipped, keyed by decision
  /// id. Moved into DecisionNode::wasted_gate_evals when the branch fails.
  std::unordered_map<std::int64_t, std::uint64_t> branch_evals;
};

class Analyzer {
 public:
  explicit Analyzer(TraceAnalysis& out) : out_(out) {}

  void handle(const TraceEvent& e) {
    ++out_.events;
    ++out_.event_counts[e.ev];
    if (out_.t_first < 0 && e.t >= 0) out_.t_first = e.t;
    if (e.t > out_.t_last) out_.t_last = e.t;
    note_worker(static_cast<int>(e.w));

    if (e.ev == "fr_dump") {
      // Flight-recorder dump header: remember why the rings were flushed so
      // reports can lead with the incident, not the event soup.
      out_.dump_reason = e.str("reason");
      out_.dump_rings = e.num("rings", 0);
      out_.dump_records = e.num("records", 0);
      return;
    }
    if (e.ev == "check_begin") {
      on_check_begin(e);
      return;
    }
    if (e.ev == "batch_begin") {
      out_.batches.push_back({e.num("delta", 0), e.num("jobs", 0),
                              e.num("checks", 0), 0});
      return;
    }
    if (e.ev == "batch_end") {
      if (!out_.batches.empty()) {
        out_.batches.back().checks_skipped = e.num("checks_skipped", 0);
      }
      return;
    }
    if (e.chk < 0) return;  // fuzz bookkeeping etc.: counted, not modeled

    OpenCheck* oc = find_open(e);
    if (oc == nullptr) return;  // already warned
    CheckTree& c = out_.checks[oc->index];

    if (e.ev == "check_end") on_check_end(e, *oc, c);
    else if (e.ev == "stage_begin") c.stages.push_back({std::string(e.str("stage")), "", e.t, -1});
    else if (e.ev == "stage_end") on_stage_end(e, c);
    else if (e.ev == "decision") on_decision(e, c);
    else if (e.ev == "decision_close") on_decision_close(e, *oc, c);
    else if (e.ev == "backtrack") on_backtrack(e, *oc, c);
    else if (e.ev == "propagate") on_propagate(e, *oc, c);
    else if (e.ev == "conflict") on_simple_tally(e, c, &CheckTree::n_conflicts, &DecisionNode::conflicts);
    else if (e.ev == "spurious_vector") on_simple_tally(e, c, &CheckTree::n_spurious, &DecisionNode::spurious);
    else if (e.ev == "gitd_round") ++c.n_gitd_rounds;
    else if (e.ev == "stem") ++c.n_stems;
    else if (e.ev == "cache") on_cache(e, c);
  }

  void finish() {
    for (const auto& [chk, oc] : open_) {
      CheckTree& c = out_.checks[oc.index];
      if (!c.closed) {
        warn("check " + std::to_string(chk) + " (" + c.output +
             ") never closed (truncated trace?)");
        close_remaining_spans(c);
      }
      // Net attribution of decision work happens once per check, after all
      // of its events have been folded in.
      for (const auto& [id, d] : c.decisions) {
        NetStat& ns = net_stat(d.net);
        ns.gate_evals += d.gate_evals;
        ns.narrowings += d.narrowings;
      }
    }
    std::sort(out_.workers.begin(), out_.workers.end());
  }

 private:
  void warn(std::string msg) {
    ++out_.n_warnings;
    if (out_.warnings.size() < kMaxStoredWarnings) {
      out_.warnings.push_back(std::move(msg));
    } else if (out_.warnings.size() == kMaxStoredWarnings) {
      out_.warnings.push_back("... further warnings suppressed");
    }
  }

  void note_worker(int w) {
    if (std::find(out_.workers.begin(), out_.workers.end(), w) ==
        out_.workers.end()) {
      out_.workers.push_back(w);
    }
  }

  NetStat& net_stat(const std::string& net) {
    NetStat& ns = out_.net_stats[net];
    if (ns.net.empty()) ns.net = net;
    return ns;
  }

  OpenCheck* find_open(const TraceEvent& e) {
    const auto it = open_.find(e.chk);
    if (it == open_.end() || !it->second.open) {
      warn("seq " + std::to_string(e.seq) + ": orphan \"" + e.ev +
           "\" for check " + std::to_string(e.chk) +
           (it == open_.end() ? " (never began)" : " (already ended)"));
      return nullptr;
    }
    return &it->second;
  }

  DecisionNode* find_decision(const TraceEvent& e, CheckTree& c) {
    if (e.dec < 0) return nullptr;
    const auto it = c.decisions.find(e.dec);
    if (it == c.decisions.end()) {
      warn("seq " + std::to_string(e.seq) + ": \"" + e.ev +
           "\" attributed to unknown decision " + std::to_string(e.dec) +
           " of check " + std::to_string(e.chk));
      return nullptr;
    }
    return &it->second;
  }

  void on_check_begin(const TraceEvent& e) {
    if (e.chk < 0) {
      warn("seq " + std::to_string(e.seq) + ": check_begin without chk id");
      return;
    }
    if (open_.contains(e.chk)) {
      warn("seq " + std::to_string(e.seq) + ": duplicate check_begin for " +
           std::to_string(e.chk));
      return;
    }
    CheckTree c;
    c.chk = e.chk;
    c.output = e.str("output");
    c.delta = e.num("delta", 0);
    c.worker = static_cast<int>(e.w);
    c.t_begin = e.t;
    open_.emplace(e.chk, OpenCheck{out_.checks.size()});
    out_.checks.push_back(std::move(c));
  }

  void on_check_end(const TraceEvent& e, OpenCheck& oc, CheckTree& c) {
    c.conclusion = e.str("conclusion");
    const TraceValue* secs = e.find("seconds");
    if (secs != nullptr) c.seconds = secs->d;
    c.witness = e.str("vector");
    c.t_end = e.t;
    c.closed = true;
    oc.open = false;
    close_remaining_spans(c);
  }

  /// End-of-check audit: every stage and decision must already be closed.
  void close_remaining_spans(CheckTree& c) {
    for (const StageSpan& s : c.stages) {
      if (s.t_end < 0) {
        warn("check " + std::to_string(c.chk) + ": stage \"" + s.stage +
             "\" never closed");
      }
    }
    for (const auto& [id, d] : c.decisions) {
      if (d.close.empty()) {
        warn("check " + std::to_string(c.chk) + ": decision " +
             std::to_string(id) + " (" + d.net + ") never closed");
      }
    }
  }

  void on_stage_end(const TraceEvent& e, CheckTree& c) {
    const std::string_view stage = e.str("stage");
    for (auto it = c.stages.rbegin(); it != c.stages.rend(); ++it) {
      if (it->t_end < 0 && it->stage == stage) {
        it->t_end = e.t;
        it->status = e.str("status");
        return;
      }
    }
    warn("seq " + std::to_string(e.seq) + ": stage_end \"" +
         std::string(stage) + "\" without open stage_begin (check " +
         std::to_string(c.chk) + ")");
  }

  void on_decision(const TraceEvent& e, CheckTree& c) {
    if (e.dec < 0) {
      warn("seq " + std::to_string(e.seq) + ": decision without dec id");
      return;
    }
    ++c.n_decisions;
    if (c.decisions.contains(e.dec)) {
      warn("seq " + std::to_string(e.seq) + ": duplicate decision id " +
           std::to_string(e.dec) + " in check " + std::to_string(c.chk));
      return;
    }
    DecisionNode d;
    d.id = e.dec;
    d.parent = e.num("parent", -1);
    d.net = e.str("net");
    const TraceValue* cls = e.find("cls");
    d.cls = cls != nullptr && cls->b;
    d.depth = e.num("depth", 0);
    d.t_open = e.t;
    if (d.parent < 0) {
      c.roots.push_back(d.id);
    } else {
      const auto pit = c.decisions.find(d.parent);
      if (pit == c.decisions.end()) {
        warn("seq " + std::to_string(e.seq) + ": decision " +
             std::to_string(d.id) + " has unknown parent " +
             std::to_string(d.parent));
        c.roots.push_back(d.id);
      } else {
        pit->second.children.push_back(d.id);
      }
    }
    ++net_stat(d.net).decisions;
    c.decisions.emplace(d.id, std::move(d));
  }

  void on_decision_close(const TraceEvent& e, OpenCheck& oc, CheckTree& c) {
    DecisionNode* d = find_decision(e, c);
    if (d == nullptr) return;
    if (!d->close.empty()) {
      warn("seq " + std::to_string(e.seq) + ": decision " +
           std::to_string(d->id) + " closed twice");
      return;
    }
    d->close = e.str("outcome");
    d->t_close = e.t;
    if (d->close == "exhausted") {
      // Whatever ran since the last flip failed too: both branches wasted.
      d->wasted_gate_evals += take_branch(oc, d->id);
    } else {
      oc.branch_evals.erase(d->id);
    }
  }

  void on_backtrack(const TraceEvent& e, OpenCheck& oc, CheckTree& c) {
    ++c.n_backtracks;
    DecisionNode* d = find_decision(e, c);
    if (d == nullptr) return;
    if (d->backtracked) {
      warn("seq " + std::to_string(e.seq) + ": decision " +
           std::to_string(d->id) + " backtracked twice");
    }
    d->backtracked = true;
    d->wasted_gate_evals += take_branch(oc, d->id);
    ++net_stat(d->net).backtracks;
  }

  std::uint64_t take_branch(OpenCheck& oc, std::int64_t dec) {
    const auto it = oc.branch_evals.find(dec);
    if (it == oc.branch_evals.end()) return 0;
    const std::uint64_t v = it->second;
    oc.branch_evals.erase(it);
    return v;
  }

  void on_propagate(const TraceEvent& e, OpenCheck& oc, CheckTree& c) {
    const auto apps = static_cast<std::uint64_t>(e.num("applications", 0));
    const auto revs = static_cast<std::uint64_t>(e.num("revisions", 0));
    if (e.dec < 0) {
      c.root_gate_evals += apps;
      c.root_narrowings += revs;
      return;
    }
    DecisionNode* d = find_decision(e, c);
    if (d == nullptr) return;
    d->gate_evals += apps;
    d->narrowings += revs;
    ++d->propagates;
    oc.branch_evals[d->id] += apps;
  }

  void on_simple_tally(const TraceEvent& e, CheckTree& c,
                       std::uint64_t CheckTree::* check_tally,
                       std::uint64_t DecisionNode::* node_tally) {
    ++(c.*check_tally);
    if (e.dec >= 0) {
      if (DecisionNode* d = find_decision(e, c)) ++(d->*node_tally);
    }
  }

  void on_cache(const TraceEvent& e, CheckTree& c) {
    const std::string_view kind = e.str("kind");
    if (kind == "hit") ++c.cache_hits;
    else if (kind == "miss") ++c.cache_misses;
    else if (kind == "dom_rebuild") ++c.cache_dom_rebuilds;
    CacheSample s = out_.cache_timeline.empty() ? CacheSample{}
                                                : out_.cache_timeline.back();
    s.t = e.t;
    if (kind == "hit") ++s.hits;
    else if (kind == "miss") ++s.misses;
    else if (kind == "dom_rebuild") ++s.dom_rebuilds;
    out_.cache_timeline.push_back(s);
  }

  TraceAnalysis& out_;
  std::unordered_map<std::int64_t, OpenCheck> open_;  // by chk id
};

}  // namespace

std::uint64_t CheckTree::total_gate_evals() const {
  std::uint64_t total = root_gate_evals;
  for (const auto& [id, d] : decisions) total += d.gate_evals;
  return total;
}

std::uint64_t CheckTree::wasted_gate_evals() const {
  std::uint64_t wasted = 0;
  for (const auto& [id, d] : decisions) wasted += d.wasted_gate_evals;
  return wasted;
}

double CheckTree::wasted_ratio() const {
  const std::uint64_t total = total_gate_evals();
  return total == 0 ? 0.0
                    : static_cast<double>(wasted_gate_evals()) /
                          static_cast<double>(total);
}

std::vector<const NetStat*> TraceAnalysis::top_nets(
    std::uint64_t NetStat::* member, std::size_t k) const {
  std::vector<const NetStat*> all;
  all.reserve(net_stats.size());
  for (const auto& [name, ns] : net_stats) {
    if (ns.*member > 0) all.push_back(&ns);
  }
  std::sort(all.begin(), all.end(),
            [member](const NetStat* a, const NetStat* b) {
              if (a->*member != b->*member) return a->*member > b->*member;
              return a->net < b->net;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

TraceAnalysis analyze_trace(std::istream& in) {
  TraceAnalysis out;
  Analyzer an(out);
  TraceReader reader(in);
  TraceEvent e;
  while (reader.next(e)) an.handle(e);
  if (!reader.error().empty()) {
    ++out.n_warnings;
    out.warnings.push_back("trace parse error: " + reader.error());
  }
  an.finish();
  return out;
}

}  // namespace waveck::explain
