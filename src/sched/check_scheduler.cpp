#include "sched/check_scheduler.hpp"

#include <atomic>
#include <optional>
#include <utility>

#include "common/telemetry.hpp"

namespace waveck::sched {

namespace {

std::size_t resolve_jobs(std::size_t jobs) {
  return jobs == 0 ? ThreadPool::hardware_workers() : jobs;
}

}  // namespace

CheckScheduler::CheckScheduler(Verifier& v, ScheduleOptions opt)
    : v_(v), opt_(opt), jobs_(resolve_jobs(opt.jobs)) {
  if (jobs_ > 1) pool_ = std::make_unique<ThreadPool>(jobs_);
  if (opt_.witness_only) v_.set_cancel_flag(&token_.flag());
}

CheckScheduler::CheckScheduler(const Circuit& c, VerifyOptions vopt,
                               ScheduleOptions opt)
    : owned_(std::make_unique<Verifier>(c, std::move(vopt))),
      v_(*owned_),
      opt_(opt),
      jobs_(resolve_jobs(opt.jobs)) {
  if (jobs_ > 1) pool_ = std::make_unique<ThreadPool>(jobs_);
  if (opt_.witness_only) v_.set_cancel_flag(&token_.flag());
}

CheckScheduler::~CheckScheduler() {
  if (opt_.witness_only) v_.set_cancel_flag(nullptr);
}

SuiteReport CheckScheduler::check_circuit(Time delta) {
  if (jobs_ <= 1) {
    // Inline serial run: same plan and merge code inside the Verifier.
    return v_.check_circuit(delta);
  }

  const telemetry::StopWatch watch;
  token_.reset();
  v_.prepare_shared();  // workers only read the shared analyses

  const SuitePlan plan = plan_suite_checks(v_.circuit(), delta);
  const std::size_t n = plan.order.size();
  std::vector<std::optional<CheckReport>> slots(n);

  // Index of the lowest-ordered violating output found so far. Checks
  // ordered strictly after it are dead weight (the serial loop would have
  // stopped before them), so not-yet-started jobs consult it and bail.
  std::atomic<std::size_t> first_violation{n};

  // One private registry per pool worker: CheckReport tallies snapshot the
  // worker's own counters, unpolluted by concurrent checks.
  std::vector<std::unique_ptr<telemetry::Registry>> worker_regs;
  worker_regs.reserve(pool_->worker_count());
  for (std::size_t i = 0; i < pool_->worker_count(); ++i) {
    worker_regs.push_back(std::make_unique<telemetry::Registry>());
  }

  std::vector<ThreadPool::Job> batch;
  batch.reserve(n);
  std::size_t skipped = 0;  // trivial outputs never become jobs
  for (std::size_t i = 0; i < n; ++i) {
    if (plan.trivial[i]) {
      slots[i] = sta_trivial_report(plan.order[i], delta);
      ++skipped;
      continue;
    }
    batch.push_back([this, &plan, &slots, &first_violation, &worker_regs,
                     delta, i](std::size_t worker) {
      // poll(): latches cancel when the token's deadline has passed, so an
      // expired batch stops claiming work (cancelled or expired: skip).
      if (token_.poll()) return;
      if (i > first_violation.load(std::memory_order_acquire)) {
        return;  // ordered after a known violation: serial never ran it
      }
      telemetry::ScopedRegistry scoped(*worker_regs[worker]);
      CheckReport rep = v_.check_output(plan.order[i], delta);
      if (rep.conclusion == CheckConclusion::kViolation) {
        std::size_t cur = first_violation.load(std::memory_order_relaxed);
        while (i < cur && !first_violation.compare_exchange_weak(
                              cur, i, std::memory_order_acq_rel)) {
        }
        if (opt_.witness_only) token_.cancel();
      }
      slots[i] = std::move(rep);
    });
  }
  // Batch span: the chrome exporter reads the worker count from here to
  // pre-declare one track per worker even if some worker never emits.
  if (telemetry::trace_enabled()) {
    telemetry::emit("batch_begin", {{"delta", delta.value()},
                                    {"jobs", pool_->worker_count()},
                                    {"checks", n - skipped}});
  }
  pool_->run(std::move(batch));

  auto& global = telemetry::Registry::global();
  for (const auto& reg : worker_regs) global.merge_from(*reg);
  global.counter("sched.batches").inc();
  global.counter("sched.jobs").add(n - skipped);

  // Merge strictly in plan order. Deterministic mode: every slot up to and
  // including the lowest-indexed violation is present, so this loop is the
  // serial loop replayed. Witness-only mode: missing slots are checks the
  // cancellation skipped; what completed merges in order.
  std::size_t cancelled = 0;
  SuiteMerger merger(delta);
  for (std::size_t i = 0; i < n; ++i) {
    if (!slots[i]) {
      ++cancelled;
      continue;
    }
    if (!merger.add(std::move(*slots[i]))) break;
  }
  global.counter("sched.checks_skipped").add(cancelled);
  if (telemetry::trace_enabled()) {
    telemetry::emit("batch_end", {{"delta", delta.value()},
                                  {"checks_skipped", cancelled}});
  }
  SuiteReport suite = std::move(merger).finish(watch.seconds());
  // A cancelled/expired batch merged from an incomplete slot set must not
  // report a proof: unless a violation settled the suite anyway, the honest
  // circuit-level answer is "abandoned" (witness-only merges that did find
  // their witness are untouched — V is present and wins).
  if (cancelled > 0 && suite.conclusion != CheckConclusion::kViolation) {
    suite.conclusion = CheckConclusion::kAbandoned;
  }
  return suite;
}

Verifier::ExactDelayResult CheckScheduler::exact_floating_delay() {
  return v_.exact_floating_delay(
      [this](Time delta) { return check_circuit(delta); });
}

}  // namespace waveck::sched
