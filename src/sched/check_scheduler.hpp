// Parallel suite verification: fans the per-output checks of a suite run
// out across a work-stealing thread pool and merges the results into a
// SuiteReport that is bit-identical to the serial Verifier::check_circuit
// (same SuitePlan order, same SuiteMerger fold — see doc/PARALLELISM.md
// for the determinism contract).
//
// Two modes:
//  * Deterministic (default): checks ordered after the lowest-indexed
//    violating output are skipped once that violation is known (serial
//    never visits them either), but every check ordered before it runs to
//    completion. The merged suite — conclusion, stage statuses, witness,
//    backtracks, stage_seconds sums, per_output list — equals the serial
//    one exactly.
//  * Witness-only (`ScheduleOptions::witness_only`): the first violation
//    found by any worker cancels the whole batch through a
//    CancellationToken; not-yet-started checks are skipped and in-flight
//    case analyses conclude kAbandoned at their next decision boundary.
//    Fastest path to *a* witness; per_output contents then depend on
//    completion order (the reported violation is still the lowest-indexed
//    one among the checks that completed).
//
// Telemetry: each worker runs its checks under a thread-local Registry
// (telemetry::ScopedRegistry), so CheckReport tallies stay attributable;
// worker registries are merged into the global registry at the end of
// every batch. Trace events carry the worker id ("w" field).
#pragma once

#include <memory>
#include <vector>

#include "sched/cancellation.hpp"
#include "sched/thread_pool.hpp"
#include "verify/verifier.hpp"

namespace waveck::sched {

struct ScheduleOptions {
  /// Worker threads for suite fan-out. 0 = ThreadPool::hardware_workers();
  /// 1 = run the suite inline on the calling thread (identical to the
  /// serial Verifier path, no pool is created).
  std::size_t jobs = 0;
  /// Abort the whole batch on the first violation found by any worker.
  bool witness_only = false;
};

class CheckScheduler {
 public:
  /// Borrows `v`; the verifier must outlive the scheduler. In witness-only
  /// mode the scheduler installs its cancellation flag into `v` (and
  /// clears it again on destruction).
  explicit CheckScheduler(Verifier& v, ScheduleOptions opt = {});
  /// Owns a Verifier over `c` built with `vopt`.
  CheckScheduler(const Circuit& c, VerifyOptions vopt = {},
                 ScheduleOptions opt = {});
  CheckScheduler(const CheckScheduler&) = delete;
  CheckScheduler& operator=(const CheckScheduler&) = delete;
  ~CheckScheduler();

  /// Parallel equivalent of Verifier::check_circuit (deterministic mode:
  /// bit-identical result). Serializes with itself — one suite at a time.
  [[nodiscard]] SuiteReport check_circuit(Time delta);

  /// Exact floating-mode delay with every probe's suite run through this
  /// scheduler. Same search loop, bounds and jumps as the serial
  /// Verifier::exact_floating_delay.
  [[nodiscard]] Verifier::ExactDelayResult exact_floating_delay();

  [[nodiscard]] std::size_t jobs() const { return jobs_; }
  [[nodiscard]] Verifier& verifier() { return v_; }
  /// The batch token: cancel() from any thread aborts the current suite
  /// (remaining checks are skipped; merged from what completed).
  [[nodiscard]] CancellationToken& token() { return token_; }

 private:
  std::unique_ptr<Verifier> owned_;  // only for the circuit-owning ctor
  Verifier& v_;
  ScheduleOptions opt_;
  std::size_t jobs_;
  CancellationToken token_;
  std::unique_ptr<ThreadPool> pool_;  // null when jobs_ == 1
};

}  // namespace waveck::sched
