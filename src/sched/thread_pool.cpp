#include "sched/thread_pool.hpp"

#include <algorithm>

#include "common/telemetry.hpp"

namespace waveck::sched {

std::size_t ThreadPool::hardware_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t n = workers == 0 ? hardware_workers() : workers;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::try_run_one(std::size_t self) {
  Job job;
  // Own deque first (back = most recently pushed), then steal from the
  // front of the first non-empty sibling, scanning outward from self.
  {
    Shard& own = *shards_[self];
    const std::scoped_lock lock(own.mu);
    if (!own.jobs.empty()) {
      job = std::move(own.jobs.back());
      own.jobs.pop_back();
    }
  }
  if (!job) {
    for (std::size_t k = 1; k < shards_.size() && !job; ++k) {
      Shard& victim = *shards_[(self + k) % shards_.size()];
      const std::scoped_lock lock(victim.mu);
      if (!victim.jobs.empty()) {
        job = std::move(victim.jobs.front());
        victim.jobs.pop_front();
      }
    }
  }
  if (!job) return false;
  job(self);
  {
    const std::scoped_lock lock(mu_);
    if (--pending_ == 0) done_.notify_all();
  }
  return true;
}

void ThreadPool::worker_main(std::size_t self) {
  telemetry::set_worker_id(static_cast<int>(self) + 1);
  for (;;) {
    {
      std::unique_lock lock(mu_);
      wake_.wait(lock, [this] { return stop_ || unclaimed_ > 0; });
      if (stop_) return;
      --unclaimed_;  // claim one job before leaving the lock
    }
    // The claim guarantees a job is available in some deque: claims never
    // exceed enqueued jobs and each claimant pops at most one, so the scan
    // in try_run_one cannot come back empty.
    try_run_one(self);
  }
}

void ThreadPool::run(std::vector<Job> jobs) {
  if (jobs.empty()) return;
  const std::size_t n = jobs.size();
  {
    const std::scoped_lock lock(mu_);
    pending_ += n;
  }
  for (std::size_t i = 0; i < n; ++i) {
    Shard& shard = *shards_[i % shards_.size()];
    const std::scoped_lock lock(shard.mu);
    shard.jobs.push_back(std::move(jobs[i]));
  }
  {
    // Claims are published only after every job is in a deque, so a woken
    // worker's claim always finds a job (see worker_main).
    const std::scoped_lock lock(mu_);
    unclaimed_ += n;
  }
  wake_.notify_all();
  std::unique_lock lock(mu_);
  done_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace waveck::sched
