// Cooperative cancellation for scheduled check batches.
//
// A CancellationToken is a single sticky flag shared between the party that
// decides to stop (a worker that found a witness, or an external caller)
// and the parties that should stop (workers about to claim the next job,
// and — through CaseAnalysisOptions::cancel — the FAN search inside an
// in-flight check, which then concludes kAbandoned; doc/PARALLELISM.md
// spells out how that interacts with suite merging).
#pragma once

#include <atomic>

namespace waveck::sched {

class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }
  /// Re-arms the token for the next batch (e.g. the next exact-delay
  /// probe). Only call between batches, never while workers are running.
  void reset() noexcept { cancelled_.store(false, std::memory_order_release); }

  /// The raw flag, for engine layers that poll a plain atomic (the case
  /// analysis takes `const std::atomic<bool>*` to avoid depending on
  /// sched). Lifetime is the token's.
  [[nodiscard]] const std::atomic<bool>& flag() const noexcept {
    return cancelled_;
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace waveck::sched
