// Cooperative cancellation for scheduled check batches.
//
// A CancellationToken is a single sticky flag shared between the party that
// decides to stop (a worker that found a witness, or an external caller)
// and the parties that should stop (workers about to claim the next job,
// and — through CaseAnalysisOptions::cancel — the FAN search inside an
// in-flight check, which then concludes kAbandoned; doc/PARALLELISM.md
// spells out how that interacts with suite merging).
#pragma once

#include <atomic>
#include <cstdint>

#include "prof/perf_counters.hpp"

namespace waveck::sched {

class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Arms an absolute monotonic deadline (prof::monotonic_ns clock; 0
  /// disarms). Once the clock passes it, the next poll() latches cancel(),
  /// so workers that only watch `flag()` observe a deadline as a normal
  /// cancellation. Arm between batches, like reset().
  void arm_deadline(std::uint64_t expiry_mono_ns) noexcept {
    deadline_ns_.store(expiry_mono_ns, std::memory_order_release);
  }
  [[nodiscard]] std::uint64_t deadline_ns() const noexcept {
    return deadline_ns_.load(std::memory_order_acquire);
  }
  /// Checks the deadline against the clock, latching cancel() on expiry.
  /// Returns the combined cancelled-or-expired state. Any thread may poll.
  bool poll() noexcept {
    if (cancelled()) return true;
    const std::uint64_t dl = deadline_ns();
    if (dl != 0 && prof::monotonic_ns() >= dl) {
      cancel();
      return true;
    }
    return false;
  }

  /// Re-arms the token for the next batch (e.g. the next exact-delay
  /// probe); the deadline, if armed, stays armed. Only call between
  /// batches, never while workers are running.
  void reset() noexcept { cancelled_.store(false, std::memory_order_release); }

  /// The raw flag, for engine layers that poll a plain atomic (the case
  /// analysis takes `const std::atomic<bool>*` to avoid depending on
  /// sched). Lifetime is the token's.
  [[nodiscard]] const std::atomic<bool>& flag() const noexcept {
    return cancelled_;
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::uint64_t> deadline_ns_{0};
};

}  // namespace waveck::sched
