// Fixed-size work-stealing thread pool.
//
// Jobs of a batch are distributed round-robin across per-worker deques;
// each worker pops from the back of its own deque (most recently pushed
// first) and, when empty, steals from the front of a sibling's, so a
// worker stuck on one long check cannot strand the jobs queued behind it.
// The deques are mutex-guarded: jobs here are whole timing checks
// (milliseconds to minutes), so queue-operation cost is irrelevant next to
// job cost and the simple locking discipline keeps the pool trivially
// TSan-clean.
//
// The pool is batch-oriented: `run(jobs)` blocks the calling thread until
// every job of the batch has executed, and may be called repeatedly (the
// exact-delay search reuses one pool across all probes). Worker threads
// are started once in the constructor and parked on a condition variable
// between batches. Each worker tags itself with telemetry::set_worker_id
// (1-based; the calling thread keeps id 0), so JSONL trace events emitted
// from inside jobs stay attributable.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace waveck::sched {

class ThreadPool {
 public:
  /// A job receives the index of the worker executing it (0-based).
  using Job = std::function<void(std::size_t)>;

  /// Starts `workers` threads; 0 means hardware_workers().
  explicit ThreadPool(std::size_t workers = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  [[nodiscard]] std::size_t worker_count() const { return shards_.size(); }
  [[nodiscard]] static std::size_t hardware_workers();

  /// Runs the batch to completion. Must not be called concurrently with
  /// itself (one batch at a time; the scheduler serializes suite runs).
  void run(std::vector<Job> jobs);

 private:
  struct Shard {
    std::mutex mu;
    std::deque<Job> jobs;
  };

  bool try_run_one(std::size_t self);
  void worker_main(std::size_t self);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;

  std::mutex mu_;                  // guards pending_/unclaimed_/stop_ + CVs
  std::condition_variable wake_;   // workers: work available or stopping
  std::condition_variable done_;   // caller: batch finished
  std::size_t pending_ = 0;        // jobs not yet finished
  std::size_t unclaimed_ = 0;      // jobs not yet popped from any deque
  bool stop_ = false;
};

}  // namespace waveck::sched
