// The Table-1 experiment suite: ISCAS'85-class circuits, NOR-mapped with a
// uniform gate delay of 10, exactly as the paper's experimental setup
// ("NOR-gate implementations of the ISCAS'85 benchmarks with delays of 10
// on the outputs of all gates"). See DESIGN.md for the substitution note:
// c17 is the genuine netlist; the others are architecture-faithful
// generated analogues.
#pragma once

#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace waveck::gen {

struct SuiteEntry {
  std::string name;        // e.g. "c17", "c6288-analog"
  Circuit circuit;         // NOR-mapped, uniform delay applied
  std::size_t max_backtracks;  // per-circuit case-analysis budget
};

/// Per-gate delay used throughout the paper's experiments.
inline constexpr std::int64_t kPaperGateDelay = 10;

/// Builds one suite circuit by name (raw architecture, before mapping).
/// Known names: c17, c432, c499, c880, c1355, c1908, c2670, c3540, c5315,
/// c6288, c7552. Throws std::invalid_argument otherwise.
[[nodiscard]] Circuit build_raw(const std::string& name);

/// NOR-maps a raw circuit and applies the uniform paper delay.
[[nodiscard]] Circuit prepare_for_experiment(
    const Circuit& raw, std::int64_t gate_delay = kPaperGateDelay);

/// The full Table-1 suite, mapped and delayed. `small_only` restricts to
/// the circuits cheap enough for unit tests.
[[nodiscard]] std::vector<SuiteEntry> table1_suite(bool small_only = false);

}  // namespace waveck::gen
