// Didactic circuits: the paper's Figure 1, ISCAS c17, parity trees, and the
// random-DAG generator.
#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "gen/rng.hpp"

namespace waveck::gen {

Circuit hrapcenko(std::int64_t gate_delay) {
  Circuit c("hrapcenko");
  const DelaySpec d = DelaySpec::fixed(gate_delay);
  auto in = [&](const std::string& n) {
    const NetId id = c.add_net(n);
    c.declare_input(id);
    return id;
  };
  const NetId e1 = in("e1"), e2 = in("e2"), e3 = in("e3"), e4 = in("e4");
  const NetId e5 = in("e5"), e6 = in("e6"), e7 = in("e7");
  const NetId n1 = c.add_net("n1"), n2 = c.add_net("n2");
  const NetId n3 = c.add_net("n3"), n4 = c.add_net("n4");
  const NetId n5 = c.add_net("n5"), n6 = c.add_net("n6");
  const NetId n7 = c.add_net("n7"), s = c.add_net("s");

  c.add_gate(GateType::kAnd, n1, {e1, e2}, d);  // g1
  c.add_gate(GateType::kAnd, n2, {n1, e3}, d);  // g2: e3 non-ctrl = 1
  c.add_gate(GateType::kOr, n3, {n2, e4}, d);   // g3
  c.add_gate(GateType::kAnd, n4, {n3, e5}, d);  // g4
  c.add_gate(GateType::kAnd, n5, {n4, e6}, d);  // g5 (short branch)
  c.add_gate(GateType::kOr, n6, {n4, e3}, d);   // g6: e3 non-ctrl = 0 (!)
  c.add_gate(GateType::kAnd, n7, {n6, e7}, d);  // g7
  c.add_gate(GateType::kOr, s, {n7, n5}, d);    // g8
  c.declare_output(s);
  c.finalize();
  return c;
}

Circuit c17() {
  Circuit c("c17");
  auto in = [&](const std::string& n) {
    const NetId id = c.add_net(n);
    c.declare_input(id);
    return id;
  };
  const NetId g1 = in("1"), g2 = in("2"), g3 = in("3"), g6 = in("6"),
              g7 = in("7");
  const NetId n10 = c.add_net("10"), n11 = c.add_net("11"),
              n16 = c.add_net("16"), n19 = c.add_net("19"),
              n22 = c.add_net("22"), n23 = c.add_net("23");
  c.add_gate(GateType::kNand, n10, {g1, g3});
  c.add_gate(GateType::kNand, n11, {g3, g6});
  c.add_gate(GateType::kNand, n16, {g2, n11});
  c.add_gate(GateType::kNand, n19, {n11, g7});
  c.add_gate(GateType::kNand, n22, {n10, n16});
  c.add_gate(GateType::kNand, n23, {n16, n19});
  c.declare_output(n22);
  c.declare_output(n23);
  c.finalize();
  return c;
}

Circuit parity_tree(unsigned inputs) {
  Circuit c("parity" + std::to_string(inputs));
  std::vector<NetId> layer;
  for (unsigned i = 0; i < inputs; ++i) {
    const NetId id = c.add_net("i" + std::to_string(i));
    c.declare_input(id);
    layer.push_back(id);
  }
  unsigned counter = 0;
  while (layer.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      const NetId t = c.add_net("x" + std::to_string(counter++));
      c.add_gate(GateType::kXor, t, {layer[i], layer[i + 1]});
      next.push_back(t);
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  c.declare_output(layer.front());
  c.finalize();
  return c;
}

Circuit random_circuit(const RandomCircuitConfig& cfg) {
  Rng rng(cfg.seed);
  Circuit c("rand" + std::to_string(cfg.seed));
  std::vector<NetId> pool;
  for (unsigned i = 0; i < cfg.inputs; ++i) {
    const NetId id = c.add_net("i" + std::to_string(i));
    c.declare_input(id);
    pool.push_back(id);
  }
  std::vector<GateType> types{GateType::kAnd,  GateType::kNand, GateType::kOr,
                              GateType::kNor,  GateType::kNot,  GateType::kBuf};
  if (cfg.with_xor) {
    types.push_back(GateType::kXor);
    types.push_back(GateType::kXnor);
  }
  if (cfg.with_mux) types.push_back(GateType::kMux);

  for (unsigned g = 0; g < cfg.gates; ++g) {
    const GateType t = types[rng.below(types.size())];
    std::vector<NetId> ins;
    std::size_t fanin = 0;
    if (is_unary(t)) {
      fanin = 1;
    } else if (t == GateType::kMux) {
      fanin = 3;
    } else if (is_xor_like(t)) {
      fanin = 2;
    } else {
      fanin = 2 + rng.below(2);
    }
    for (std::size_t i = 0; i < fanin; ++i) {
      ins.push_back(pool[rng.below(pool.size())]);
    }
    const NetId out = c.add_net("g" + std::to_string(g));
    c.add_gate(t, out, std::move(ins), DelaySpec::fixed(1 + rng.below(10)));
    pool.push_back(out);
  }
  // Outputs: the last few generated nets (guaranteed driven).
  const unsigned outs = std::min<unsigned>(cfg.outputs, cfg.gates);
  for (unsigned i = 0; i < outs; ++i) {
    c.declare_output(pool[pool.size() - 1 - i]);
  }
  c.finalize();
  return c;
}

}  // namespace waveck::gen
