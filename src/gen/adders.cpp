// Adder generators: ripple-carry and the paper's carry-skip adder (Fig. 2).
#include <string>
#include <vector>

#include "gen/generators.hpp"

namespace waveck::gen {
namespace {

struct Builder {
  Circuit c;
  unsigned tmp = 0;

  explicit Builder(std::string name) : c(std::move(name)) {}

  NetId input(const std::string& n) {
    const NetId id = c.add_net(n);
    c.declare_input(id);
    return id;
  }
  NetId fresh() { return c.add_net("t" + std::to_string(tmp++)); }
  NetId op(GateType t, std::vector<NetId> ins) {
    const NetId out = fresh();
    c.add_gate(t, out, std::move(ins));
    return out;
  }
  NetId named(GateType t, const std::string& name, std::vector<NetId> ins) {
    const NetId out = c.add_net(name);
    c.add_gate(t, out, std::move(ins));
    return out;
  }

  /// Full adder; returns {sum, cout}.
  std::pair<NetId, NetId> full_adder(NetId a, NetId b, NetId cin,
                                     const std::string& sum_name) {
    const NetId p = op(GateType::kXor, {a, b});
    const NetId sum = named(GateType::kXor, sum_name, {p, cin});
    const NetId g = op(GateType::kAnd, {a, b});
    const NetId pc = op(GateType::kAnd, {p, cin});
    const NetId cout = op(GateType::kOr, {g, pc});
    return {sum, cout};
  }
};

}  // namespace

Circuit ripple_carry_adder(unsigned bits) {
  Builder b("rca" + std::to_string(bits));
  std::vector<NetId> a(bits), bb(bits);
  for (unsigned i = 0; i < bits; ++i) a[i] = b.input("a" + std::to_string(i));
  for (unsigned i = 0; i < bits; ++i) bb[i] = b.input("b" + std::to_string(i));
  NetId carry = b.input("cin");
  for (unsigned i = 0; i < bits; ++i) {
    auto [sum, cout] = b.full_adder(a[i], bb[i], carry, "s" + std::to_string(i));
    b.c.declare_output(sum);
    carry = cout;
  }
  const NetId cout = b.named(GateType::kBuf, "cout", {carry});
  b.c.declare_output(cout);
  b.c.finalize();
  return b.c;
}

Circuit carry_skip_adder(unsigned bits, unsigned block) {
  Builder b("csa" + std::to_string(bits) + "x" + std::to_string(block));
  std::vector<NetId> a(bits), bb(bits);
  for (unsigned i = 0; i < bits; ++i) a[i] = b.input("a" + std::to_string(i));
  for (unsigned i = 0; i < bits; ++i) bb[i] = b.input("b" + std::to_string(i));
  NetId block_cin = b.input("cin");

  for (unsigned lo = 0; lo < bits; lo += block) {
    const unsigned hi = std::min(bits, lo + block);
    NetId carry = block_cin;
    std::vector<NetId> props;
    for (unsigned i = lo; i < hi; ++i) {
      const NetId p = b.op(GateType::kXor, {a[i], bb[i]});
      props.push_back(p);
      const NetId sum =
          b.named(GateType::kXor, "s" + std::to_string(i), {p, carry});
      b.c.declare_output(sum);
      const NetId g = b.op(GateType::kAnd, {a[i], bb[i]});
      const NetId pc = b.op(GateType::kAnd, {p, carry});
      carry = b.op(GateType::kOr, {g, pc});
    }
    // Skip path: P = AND of the block propagates selects between the ripple
    // carry-out and the block carry-in (a gate-level multiplexer, the NAND
    // mux of the paper's Figure 2). The mux *actively deselects* the ripple
    // chain when every bit propagates, so the full block ripple is a false
    // path in floating mode -- an OR-ed skip would only cut final-1
    // carries.
    const NetId bp = b.op(GateType::kAnd, props);
    const NetId nbp = b.op(GateType::kNot, {bp});
    const NetId via_ripple = b.op(GateType::kAnd, {nbp, carry});
    const NetId via_skip = b.op(GateType::kAnd, {bp, block_cin});
    block_cin = b.named(GateType::kOr, "bc" + std::to_string(hi),
                        {via_ripple, via_skip});
  }
  const NetId cout = b.named(GateType::kBuf, "cout", {block_cin});
  b.c.declare_output(cout);
  b.c.finalize();
  return b.c;
}

}  // namespace waveck::gen
