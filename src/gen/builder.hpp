// Internal net-level construction helpers shared by the generators.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <vector>

#include "netlist/circuit.hpp"

namespace waveck::gen::detail {

struct Builder {
  Circuit c;
  unsigned tmp = 0;

  explicit Builder(std::string name) : c(std::move(name)) {}

  NetId input(const std::string& n) {
    const NetId id = c.add_net(n);
    c.declare_input(id);
    return id;
  }
  NetId fresh() { return c.add_net("t" + std::to_string(tmp++)); }
  NetId op(GateType t, std::vector<NetId> ins) {
    const NetId out = fresh();
    c.add_gate(t, out, std::move(ins));
    return out;
  }
  NetId named(GateType t, const std::string& name, std::vector<NetId> ins) {
    const NetId out = c.add_net(name);
    c.add_gate(t, out, std::move(ins));
    return out;
  }
  NetId out(GateType t, const std::string& name, std::vector<NetId> ins) {
    const NetId o = named(t, name, std::move(ins));
    c.declare_output(o);
    return o;
  }

  /// Full adder; returns {sum, cout}.
  std::pair<NetId, NetId> full_adder(NetId a, NetId b, NetId cin) {
    const NetId p = op(GateType::kXor, {a, b});
    const NetId s = op(GateType::kXor, {p, cin});
    const NetId g = op(GateType::kAnd, {a, b});
    const NetId pc = op(GateType::kAnd, {p, cin});
    return {s, op(GateType::kOr, {g, pc})};
  }
  std::pair<NetId, NetId> half_adder(NetId a, NetId b) {
    return {op(GateType::kXor, {a, b}), op(GateType::kAnd, {a, b})};
  }

  /// Balanced XOR tree.
  NetId xor_tree(std::vector<NetId> layer) {
    assert(!layer.empty());
    while (layer.size() > 1) {
      std::vector<NetId> next;
      for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
        next.push_back(op(GateType::kXor, {layer[i], layer[i + 1]}));
      }
      if (layer.size() % 2) next.push_back(layer.back());
      layer = std::move(next);
    }
    return layer.front();
  }

  /// Gate-level 2:1 mux: sel ? d1 : d0 (AND-OR form). The deselected leg is
  /// actively cut, which is what makes skip structures false paths in
  /// floating mode.
  NetId mux(NetId sel, NetId d0, NetId d1) {
    const NetId ns = op(GateType::kNot, {sel});
    const NetId t0 = op(GateType::kAnd, {ns, d0});
    const NetId t1 = op(GateType::kAnd, {sel, d1});
    return op(GateType::kOr, {t0, t1});
  }

  /// Carry-skip adder core over pre-existing operand nets: ripple blocks of
  /// `block` bits, block carry-out selected between ripple-out and block
  /// carry-in by the AND of the block propagates (the paper's Figure 2
  /// skip). Returns the sum nets; `cout` receives the final carry. Sum nets
  /// are named `<prefix><i>` when `prefix` is non-empty (fresh otherwise).
  std::vector<NetId> carry_skip_core(const std::vector<NetId>& a,
                                     const std::vector<NetId>& b, NetId cin,
                                     unsigned block, NetId* cout,
                                     const std::string& prefix = {}) {
    assert(a.size() == b.size());
    const unsigned bits = static_cast<unsigned>(a.size());
    std::vector<NetId> sums(bits);
    NetId block_cin = cin;
    for (unsigned lo = 0; lo < bits; lo += block) {
      const unsigned hi = std::min(bits, lo + block);
      NetId carry = block_cin;
      std::vector<NetId> props;
      for (unsigned i = lo; i < hi; ++i) {
        const NetId p = op(GateType::kXor, {a[i], b[i]});
        props.push_back(p);
        sums[i] = prefix.empty()
                      ? op(GateType::kXor, {p, carry})
                      : named(GateType::kXor, prefix + std::to_string(i),
                              {p, carry});
        const NetId g = op(GateType::kAnd, {a[i], b[i]});
        const NetId pc = op(GateType::kAnd, {p, carry});
        carry = op(GateType::kOr, {g, pc});
      }
      const NetId bp = op(GateType::kAnd, props);
      block_cin = mux(bp, carry, block_cin);
    }
    if (cout != nullptr) *cout = block_cin;
    return sums;
  }
};

}  // namespace waveck::gen::detail
