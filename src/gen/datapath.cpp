// Datapath generators: array multiplier (c6288-class), Hamming SEC/DED
// correctors (c499/c1355/c1908-class), ALU (c880/c3540/c5315-class),
// priority controller (c432-class), adder+comparator (c7552-class).
#include <cassert>
#include <string>
#include <vector>

#include "gen/builder.hpp"
#include "gen/generators.hpp"

namespace waveck::gen {

using detail::Builder;

Circuit array_multiplier(unsigned bits, bool skip_final_adder) {
  Builder b("mul" + std::to_string(bits) + "x" + std::to_string(bits) +
            (skip_final_adder ? "s" : ""));
  std::vector<NetId> a(bits), bb(bits);
  for (unsigned i = 0; i < bits; ++i) a[i] = b.input("a" + std::to_string(i));
  for (unsigned i = 0; i < bits; ++i) bb[i] = b.input("b" + std::to_string(i));

  // Partial products pp[i][j] = a_i AND b_j contribute to column i+j.
  // Carry-save rows, then ripple the last row (the c6288 array topology).
  std::vector<NetId> row(bits);  // running sums, row k holds bits k..k+n-1
  for (unsigned j = 0; j < bits; ++j) {
    row[j] = b.op(GateType::kAnd, {a[j], bb[0]});
  }
  b.out(GateType::kBuf, "p0", {row[0]});

  std::vector<NetId> carry(bits, NetId{});
  bool have_carry = false;
  for (unsigned i = 1; i < bits; ++i) {
    std::vector<NetId> nrow(bits);
    std::vector<NetId> ncarry(bits);
    for (unsigned j = 0; j < bits; ++j) {
      const NetId pp = b.op(GateType::kAnd, {a[j], bb[i]});
      const NetId above = j + 1 < bits ? row[j + 1] : NetId{};
      std::vector<NetId> addends{pp};
      if (above.valid()) addends.push_back(above);
      if (have_carry && carry[j].valid()) addends.push_back(carry[j]);
      if (addends.size() == 1) {
        nrow[j] = addends[0];
        ncarry[j] = NetId{};
      } else if (addends.size() == 2) {
        auto [s, co] = b.half_adder(addends[0], addends[1]);
        nrow[j] = s;
        ncarry[j] = co;
      } else {
        auto [s, co] = b.full_adder(addends[0], addends[1], addends[2]);
        nrow[j] = s;
        ncarry[j] = co;
      }
    }
    row = std::move(nrow);
    carry = std::move(ncarry);
    have_carry = true;
    b.out(GateType::kBuf, "p" + std::to_string(i), {row[0]});
  }

  if (skip_final_adder) {
    // Final carry-propagate row as a carry-skip adder (fast-multiplier
    // structure): operands are the surviving sums and carries, weight
    // bits+k. Constant-0 carry-in from a self-masking cone.
    std::vector<NetId> x(bits - 1), y(bits - 1);
    for (unsigned k = 0; k + 1 < bits; ++k) {
      x[k] = row[k + 1];
      y[k] = carry[k];
    }
    const NetId na0 = b.op(GateType::kNot, {a[0]});
    const NetId zero = b.op(GateType::kAnd, {a[0], na0});
    NetId cout;
    const auto sums = b.carry_skip_core(x, y, zero, 4, &cout);
    for (unsigned k = 0; k + 1 < bits; ++k) {
      b.out(GateType::kBuf, "p" + std::to_string(bits + k), {sums[k]});
    }
    b.out(GateType::kBuf, "p" + std::to_string(2 * bits - 1), {cout});
    b.c.finalize();
    return b.c;
  }

  // Final row: ripple row[1..] + carry[0..] into the upper product bits.
  NetId rc;
  bool have_rc = false;
  for (unsigned j = 1; j < bits; ++j) {
    const NetId sum_in = row[j];
    const NetId carry_in = carry[j - 1].valid() ? carry[j - 1] : NetId{};
    NetId s;
    NetId co = NetId{};
    if (!have_rc && !carry_in.valid()) {
      s = sum_in;
    } else if (!have_rc) {
      auto [ss, cc] = b.half_adder(sum_in, carry_in);
      s = ss;
      co = cc;
    } else if (!carry_in.valid()) {
      auto [ss, cc] = b.half_adder(sum_in, rc);
      s = ss;
      co = cc;
    } else {
      auto [ss, cc] = b.full_adder(sum_in, carry_in, rc);
      s = ss;
      co = cc;
    }
    b.out(GateType::kBuf, "p" + std::to_string(bits - 1 + j), {s});
    if (co.valid()) {
      rc = co;
      have_rc = true;
    } else {
      have_rc = false;
    }
  }
  if (have_rc) {
    b.out(GateType::kBuf, "p" + std::to_string(2 * bits - 1), {rc});
  }
  b.c.finalize();
  return b.c;
}

Circuit ecc_corrector(unsigned data, bool double_error_detect) {
  Builder b((double_error_detect ? "secded" : "sec") + std::to_string(data));
  // Check-bit count: smallest r with 2^r >= data + r + 1.
  unsigned r = 1;
  while ((1u << r) < data + r + 1) ++r;

  std::vector<NetId> d(data);
  for (unsigned i = 0; i < data; ++i) d[i] = b.input("d" + std::to_string(i));
  std::vector<NetId> chk(r);
  for (unsigned i = 0; i < r; ++i) chk[i] = b.input("c" + std::to_string(i));
  NetId overall;
  if (double_error_detect) overall = b.input("cp");

  // Hamming positions: data bit i sits at the i-th non-power-of-two code
  // position (1-based).
  std::vector<unsigned> pos(data);
  {
    unsigned p = 1, i = 0;
    while (i < data) {
      if ((p & (p - 1)) != 0) pos[i++] = p;
      ++p;
    }
  }

  // Syndrome bit k = chk_k XOR parity of data bits whose position has bit k.
  std::vector<NetId> synd(r);
  for (unsigned k = 0; k < r; ++k) {
    std::vector<NetId> terms{chk[k]};
    for (unsigned i = 0; i < data; ++i) {
      if (pos[i] & (1u << k)) terms.push_back(d[i]);
    }
    synd[k] = b.xor_tree(terms);
  }

  // Decode: data bit i flips when the syndrome equals pos[i].
  std::vector<NetId> nsynd(r);
  for (unsigned k = 0; k < r; ++k) {
    nsynd[k] = b.op(GateType::kNot, {synd[k]});
  }
  for (unsigned i = 0; i < data; ++i) {
    std::vector<NetId> match;
    for (unsigned k = 0; k < r; ++k) {
      match.push_back((pos[i] & (1u << k)) ? synd[k] : nsynd[k]);
    }
    const NetId hit = b.op(GateType::kAnd, std::move(match));
    b.out(GateType::kXor, "o" + std::to_string(i), {d[i], hit});
  }

  if (double_error_detect) {
    // Double-error flag: some syndrome bit set but overall parity matches.
    std::vector<NetId> all = d;
    all.insert(all.end(), chk.begin(), chk.end());
    all.push_back(overall);
    const NetId par = b.xor_tree(all);  // 0 when overall parity consistent
    const NetId any = b.op(GateType::kOr, synd);
    const NetId npar = b.op(GateType::kNot, {par});
    b.out(GateType::kAnd, "ded", {any, npar});
    b.out(GateType::kBuf, "sec_flag", {any});
  }
  b.c.finalize();
  return b.c;
}

Circuit alu(const AluConfig& cfg) {
  Builder b("alu" + std::to_string(cfg.width));
  const unsigned w = cfg.width;
  std::vector<NetId> a(w), bb(w);
  for (unsigned i = 0; i < w; ++i) a[i] = b.input("a" + std::to_string(i));
  for (unsigned i = 0; i < w; ++i) bb[i] = b.input("b" + std::to_string(i));
  const NetId op0 = b.input("op0");
  const NetId op1 = b.input("op1");
  const NetId sub = cfg.with_subtract ? b.input("sub") : NetId{};

  // Operand B, optionally complemented for subtraction.
  std::vector<NetId> bop(w);
  for (unsigned i = 0; i < w; ++i) {
    if (cfg.with_subtract) {
      bop[i] = b.op(GateType::kXor, {bb[i], sub});
    } else {
      bop[i] = bb[i];
    }
  }

  // Adder chain.
  std::vector<NetId> sum(w);
  NetId carry = cfg.with_subtract ? sub : NetId{};
  if (!carry.valid()) {
    // carry-in 0: model with AND(a0, b0) start.
    auto [s0, c0] = b.half_adder(a[0], bop[0]);
    sum[0] = s0;
    carry = c0;
  } else {
    auto [s0, c0] = b.full_adder(a[0], bop[0], carry);
    sum[0] = s0;
    carry = c0;
  }
  for (unsigned i = 1; i < w; ++i) {
    auto [s, co] = b.full_adder(a[i], bop[i], carry);
    sum[i] = s;
    carry = co;
  }

  // Logic unit + op select: op = 00 add, 01 and, 10 or, 11 xor.
  const NetId nop0 = b.op(GateType::kNot, {op0});
  const NetId nop1 = b.op(GateType::kNot, {op1});
  const NetId sel_add = b.op(GateType::kAnd, {nop1, nop0});
  const NetId sel_and = b.op(GateType::kAnd, {nop1, op0});
  const NetId sel_or = b.op(GateType::kAnd, {op1, nop0});
  const NetId sel_xor = b.op(GateType::kAnd, {op1, op0});
  std::vector<NetId> res(w);
  for (unsigned i = 0; i < w; ++i) {
    const NetId andv = b.op(GateType::kAnd, {a[i], bb[i]});
    const NetId orv = b.op(GateType::kOr, {a[i], bb[i]});
    const NetId xorv = b.op(GateType::kXor, {a[i], bb[i]});
    const NetId m0 = b.op(GateType::kAnd, {sel_add, sum[i]});
    const NetId m1 = b.op(GateType::kAnd, {sel_and, andv});
    const NetId m2 = b.op(GateType::kAnd, {sel_or, orv});
    const NetId m3 = b.op(GateType::kAnd, {sel_xor, xorv});
    res[i] = b.out(GateType::kOr, "r" + std::to_string(i), {m0, m1, m2, m3});
  }

  if (cfg.with_flags) {
    std::vector<NetId> nres(w);
    for (unsigned i = 0; i < w; ++i) {
      nres[i] = b.op(GateType::kNot, {res[i]});
    }
    b.out(GateType::kAnd, "zero", nres);
    b.out(GateType::kBuf, "cout", {carry});
  }
  if (cfg.with_parity) {
    b.out(GateType::kBuf, "par", {b.xor_tree(res)});
  }
  b.c.finalize();
  return b.c;
}

Circuit priority_controller(unsigned lines) {
  Builder b("prio3x" + std::to_string(lines));
  constexpr unsigned kBuses = 3;
  std::vector<std::vector<NetId>> req(kBuses, std::vector<NetId>(lines));
  std::vector<std::vector<NetId>> en(kBuses, std::vector<NetId>(lines));
  for (unsigned bus = 0; bus < kBuses; ++bus) {
    for (unsigned l = 0; l < lines; ++l) {
      req[bus][l] =
          b.input("r" + std::to_string(bus) + "_" + std::to_string(l));
    }
  }
  for (unsigned l = 0; l < lines; ++l) {
    en[0][l] = b.input("e" + std::to_string(l));
  }

  // Bus activity: any enabled request on the bus (c432's first XOR/NOR
  // layer is approximated with AND-OR here; the mapped NOR version is what
  // the experiments use anyway).
  std::vector<NetId> busy(kBuses);
  for (unsigned bus = 0; bus < kBuses; ++bus) {
    std::vector<NetId> terms;
    for (unsigned l = 0; l < lines; ++l) {
      terms.push_back(bus == 0
                          ? b.op(GateType::kAnd, {req[bus][l], en[0][l]})
                          : req[bus][l]);
    }
    busy[bus] = b.op(GateType::kOr, std::move(terms));
  }
  // Priority: bus 0 beats 1 beats 2.
  const NetId nb0 = b.op(GateType::kNot, {busy[0]});
  const NetId nb1 = b.op(GateType::kNot, {busy[1]});
  std::vector<NetId> win(kBuses);
  win[0] = busy[0];
  win[1] = b.op(GateType::kAnd, {busy[1], nb0});
  win[2] = b.op(GateType::kAnd, {busy[2], nb0, nb1});

  // Per-line grants: request AND its bus won AND no lower-numbered line of
  // the same bus requests (daisy chain).
  for (unsigned bus = 0; bus < kBuses; ++bus) {
    NetId blocked;  // OR of lower-numbered requests
    bool have_blocked = false;
    for (unsigned l = 0; l < lines; ++l) {
      std::vector<NetId> terms{req[bus][l], win[bus]};
      if (have_blocked) {
        terms.push_back(b.op(GateType::kNot, {blocked}));
      }
      b.out(GateType::kAnd,
            "g" + std::to_string(bus) + "_" + std::to_string(l),
            std::move(terms));
      blocked = have_blocked ? b.op(GateType::kOr, {blocked, req[bus][l]})
                             : req[bus][l];
      have_blocked = true;
    }
  }
  b.c.finalize();
  return b.c;
}

Circuit adder_comparator(unsigned width) {
  Builder b("addcmp" + std::to_string(width));
  std::vector<NetId> a(width), bb(width);
  for (unsigned i = 0; i < width; ++i) {
    a[i] = b.input("a" + std::to_string(i));
  }
  for (unsigned i = 0; i < width; ++i) {
    bb[i] = b.input("b" + std::to_string(i));
  }
  const NetId cin = b.input("cin");

  NetId carry = cin;
  std::vector<NetId> sum(width);
  for (unsigned i = 0; i < width; ++i) {
    auto [s, co] = b.full_adder(a[i], bb[i], carry);
    sum[i] = s;
    carry = co;
    b.c.declare_output(s);
  }
  b.out(GateType::kBuf, "cout", {carry});

  // Magnitude comparator: gt_i chain from MSB down.
  NetId eq_so_far;
  NetId gt;
  bool have = false;
  for (unsigned i = width; i-- > 0;) {
    const NetId nb = b.op(GateType::kNot, {bb[i]});
    const NetId na = b.op(GateType::kNot, {a[i]});
    const NetId gt_here = b.op(GateType::kAnd, {a[i], nb});
    const NetId eq_here = b.op(GateType::kXnor, {a[i], bb[i]});
    if (!have) {
      gt = gt_here;
      eq_so_far = eq_here;
      have = true;
    } else {
      const NetId propagate = b.op(GateType::kAnd, {eq_so_far, gt_here});
      gt = b.op(GateType::kOr, {gt, propagate});
      eq_so_far = b.op(GateType::kAnd, {eq_so_far, eq_here});
    }
    (void)na;
  }
  b.out(GateType::kBuf, "a_gt_b", {gt});
  b.out(GateType::kBuf, "a_eq_b", {eq_so_far});
  b.out(GateType::kBuf, "parity", {b.xor_tree(sum)});
  b.c.finalize();
  return b.c;
}

}  // namespace waveck::gen
