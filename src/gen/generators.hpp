// Benchmark circuit generators.
//
// The paper evaluates NOR-gate implementations of the ISCAS'85 suite plus
// two didactic circuits (the Hrapcenko false-path chain of Figure 1 and the
// carry-skip adder of Figure 2). The original ISCAS'85 netlists cannot be
// bundled here (offline workspace); instead `c17()` is embedded verbatim
// (it is printed in the ISCAS'85 paper itself) and the other circuits are
// generated from their documented architectures at comparable size -- see
// DESIGN.md "Substitutions". `iscas_suite.hpp` assembles the Table-1 suite.
#pragma once

#include <cstdint>

#include "netlist/circuit.hpp"

namespace waveck::gen {

/// The 8-gate false-path circuit of the paper's Figure 1 / Example 2
/// (Hrapcenko's construction): topological delay 70, floating delay 60 at
/// 10 units per gate. The path n1,g2,...,g8,s is false because input e3
/// must be non-controlling at both g2 (an AND) and g6 (an OR).
[[nodiscard]] Circuit hrapcenko(std::int64_t gate_delay = 10);

/// ISCAS'85 c17, verbatim (6 NAND gates, 5 inputs, 2 outputs).
[[nodiscard]] Circuit c17();

/// Ripple-carry adder: inputs a0..a{n-1}, b0..b{n-1}, cin; outputs
/// s0..s{n-1}, cout.
[[nodiscard]] Circuit ripple_carry_adder(unsigned bits);

/// Carry-skip adder (paper Figure 2): ripple blocks of `block` bits with an
/// AND-of-propagates skip path OR-ed into each block's carry-out. The
/// block-to-block ripple chain is the classic false path: with all
/// propagates true the skip settles the carry first.
[[nodiscard]] Circuit carry_skip_adder(unsigned bits, unsigned block);

/// Carry-select adder: each block is computed twice (carry-in 0 and 1) and
/// the block carry selects the results -- another classic false-path-rich
/// structure (the unselected block's ripple never reaches the output).
[[nodiscard]] Circuit carry_select_adder(unsigned bits, unsigned block);

/// Kogge-Stone parallel-prefix adder: log-depth, no intentional false
/// paths; the control sample of the adder-family study.
[[nodiscard]] Circuit kogge_stone_adder(unsigned bits);

/// Wallace-tree multiplier: 3:2 compression of the partial products, then a
/// ripple carry-propagate row (log-depth reduction vs the array's linear
/// rows).
[[nodiscard]] Circuit wallace_multiplier(unsigned bits);

/// n x n carry-save array multiplier (the c6288 architecture: c6288 is a
/// 16x16 array multiplier of 240 adder cells). With `skip_final_adder` the
/// final carry-propagate row is a carry-skip adder (blocks of 4) -- a
/// standard fast-multiplier structure that makes the upper product bits'
/// full-ripple paths false.
[[nodiscard]] Circuit array_multiplier(unsigned bits,
                                       bool skip_final_adder = false);

/// Single-error-correcting (Hamming) circuit over `data` bits: inputs are
/// data plus received check bits; outputs the corrected word. This is the
/// c499/c1355 architecture (32-bit SEC). With `double_error_detect` a
/// SEC/DED overall-parity stage is added (the c1908 architecture, 16-bit).
[[nodiscard]] Circuit ecc_corrector(unsigned data, bool double_error_detect);

/// Simple ALU: two `width`-bit operands, 2-bit opcode (ADD / AND / OR /
/// XOR), optional subtract stage and zero/overflow flags. c880/c2670/c3540/
/// c5315-class structure (adders + logic + output selection).
struct AluConfig {
  unsigned width = 8;
  bool with_subtract = true;
  bool with_flags = true;
  bool with_parity = false;
};
[[nodiscard]] Circuit alu(const AluConfig& cfg);

/// Priority/interrupt controller in the c432 style: `lines` request lines
/// per bus, 3 buses, bus-priority resolution and per-line grant outputs
/// (c432 is a 27-channel interrupt controller: 3 x 9 lines).
[[nodiscard]] Circuit priority_controller(unsigned lines = 9);

/// 32-bit-adder-plus-magnitude-comparator block (c7552-class datapath).
[[nodiscard]] Circuit adder_comparator(unsigned width);

/// Balanced XOR parity tree over n inputs.
[[nodiscard]] Circuit parity_tree(unsigned inputs);

/// The three textbook false-path idioms, as appendable "mode-gated bypass"
/// blocks. Each adds one output whose topological delay exceeds the host's
/// but whose floating delay does not reach it; they differ in which
/// machinery can *prove* that (the paper's Table 1 stage profiles):
enum class FalsePathKind {
  /// Single chain gated by a mode signal with contradictory polarities at
  /// entry and exit (Hrapcenko/Example-2 mechanics): backward narrowing is
  /// unambiguous, so the plain fixpoint closes it (paper's c5315/c7552).
  kLocalChain,
  /// The same contradiction hidden behind an XOR-reconvergent diamond: the
  /// diamond's sibling coverage stalls local narrowing in both classes, but
  /// the diamond source dominates every long path, so the dynamic-dominator
  /// implication (Corollary 1) pushes the last-transition requirement
  /// through and closes it (paper's c1908/c3540).
  kDominatorDiamond,
  /// Two parallel chains with opposite gating polarities merged by an OR:
  /// no dominator beyond the output exists and narrowing is ambiguous, but
  /// splitting the mode stem refutes both classes (paper's c2670/c6288).
  kStemContradiction,
};

/// Appends a false-path block of `kind` to a finalized circuit (the circuit
/// is re-finalized). The block is driven by the first primary input (the
/// "mode" signal) and, for the first two kinds, by the host's deepest
/// output net, so the false path runs through the host logic. `stages`
/// DELAY elements set the chain length (pick >= host depth in gates so the
/// block's path is the critical one). The new output is `<prefix>_out`.
void append_false_path_block(Circuit& c, FalsePathKind kind, unsigned stages,
                             const std::string& prefix = "fp");

/// Deterministic pseudo-random DAG circuit (for property tests): `nets`
/// internal gates over `inputs` inputs, gate types drawn from the basic
/// alphabet, fanin 1..3. Same seed => same circuit.
struct RandomCircuitConfig {
  unsigned inputs = 8;
  unsigned gates = 30;
  unsigned outputs = 4;
  std::uint64_t seed = 1;
  bool with_xor = true;
  bool with_mux = false;
};
[[nodiscard]] Circuit random_circuit(const RandomCircuitConfig& cfg);

/// Structure-aware random circuit generator (the differential fuzzer's
/// workhorse; see doc/TESTING.md). Unlike `random_circuit` it controls the
/// *shape* of the DAG, which is what the verifier's stages actually key on:
///  * a weighted gate mix (skew toward AND/OR for controlling-value-heavy
///    circuits, toward XOR for narrowing-resistant ones),
///  * reconvergence-rich fanout: input selection is biased toward a recent
///    window of nets, so stems with multiple converging branches — the
///    stem-correlation and dominator stages' subject matter — are common
///    rather than coincidental,
///  * injected false-path idioms (`append_false_path_block` kinds round-
///    robin), so the generated circuits exercise the same machinery the
///    paper's Table-1 circuits do,
///  * randomized per-gate delay annotation in [1, delay_max] (optionally
///    proper intervals with dmin < dmax).
/// Same config => same circuit, bit for bit.
struct StructuredCircuitConfig {
  unsigned inputs = 8;
  unsigned gates = 36;
  unsigned outputs = 4;
  std::uint64_t seed = 1;
  /// Gate-mix weights (relative; a zero weight removes the type).
  unsigned w_and = 4, w_or = 4, w_nand = 3, w_nor = 3;
  unsigned w_xor = 2, w_xnor = 1, w_not = 2, w_buf = 1, w_mux = 0;
  /// Percent chance a gate input is drawn from the `recent_window` newest
  /// nets instead of uniformly — high values give deep, reconvergent DAGs.
  unsigned reconvergence_percent = 60;
  unsigned recent_window = 6;
  /// False-path blocks appended after the core DAG (kinds cycle through
  /// kLocalChain / kDominatorDiamond / kStemContradiction).
  unsigned false_path_blocks = 0;
  unsigned false_path_stages = 6;
  /// Per-gate dmax is uniform in [1, delay_max]; with `delay_intervals`
  /// dmin is uniform in [0, dmax] instead of dmin == dmax.
  std::int64_t delay_max = 10;
  bool delay_intervals = false;
};
[[nodiscard]] Circuit structured_random_circuit(
    const StructuredCircuitConfig& cfg);

}  // namespace waveck::gen
