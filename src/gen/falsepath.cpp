// Appendable false-path blocks (see generators.hpp for the taxonomy).
#include <string>

#include "gen/generators.hpp"
#include "netlist/topo_delay.hpp"

namespace waveck::gen {
namespace {

class Appender {
 public:
  Appender(Circuit& c, std::string prefix)
      : c_(c), prefix_(std::move(prefix)) {}

  NetId op(GateType t, std::vector<NetId> ins) {
    const NetId out =
        c_.add_net(prefix_ + "_" + std::to_string(counter_++));
    c_.add_gate(t, out, std::move(ins));
    return out;
  }
  NetId chain(NetId from, unsigned stages) {
    NetId cur = from;
    for (unsigned i = 0; i < stages; ++i) {
      cur = op(GateType::kDelay, {cur});
    }
    return cur;
  }
  NetId output(GateType t, std::vector<NetId> ins) {
    const NetId out = c_.add_net(prefix_ + "_out");
    c_.add_gate(t, out, std::move(ins));
    c_.declare_output(out);
    return out;
  }

 private:
  Circuit& c_;
  std::string prefix_;
  unsigned counter_ = 0;
};

/// Deepest driven net (by unit-gate depth, so the choice is independent of
/// the delay annotation applied later).
NetId deepest_net(const Circuit& c) {
  std::vector<unsigned> depth(c.num_nets(), 0);
  NetId best = c.outputs().empty() ? c.inputs().front() : c.outputs().front();
  unsigned best_depth = 0;
  for (GateId g : c.topo_order()) {
    const Gate& gate = c.gate(g);
    unsigned d = 0;
    for (NetId in : gate.ins) d = std::max(d, depth[in.index()]);
    depth[gate.out.index()] = d + 1;
    if (d + 1 >= best_depth) {
      best_depth = d + 1;
      best = gate.out;
    }
  }
  return best;
}

/// A shallow driven net (first gate in topological order) for harmless
/// tie-ins.
NetId shallow_net(const Circuit& c) {
  if (c.topo_order().empty()) return c.inputs().front();
  return c.gate(c.topo_order().front()).out;
}

}  // namespace

void append_false_path_block(Circuit& c, FalsePathKind kind, unsigned stages,
                             const std::string& prefix) {
  Appender a(c, prefix);
  const NetId mode = c.inputs().front();

  switch (kind) {
    case FalsePathKind::kLocalChain: {
      // head = AND(H, mode) needs mode = 1; tail = OR(chain, mode) passes
      // late transitions only when mode = 0.
      const NetId h = deepest_net(c);
      const NetId head = a.op(GateType::kAnd, {h, mode});
      const NetId end = a.chain(head, stages);
      a.output(GateType::kOr, {end, mode});
      break;
    }
    case FalsePathKind::kDominatorDiamond: {
      // The kLocalChain contradiction, then d -> {u, w} -> XOR(u, w): the
      // correlated-sibling XOR merge stalls local narrowing; d dominates.
      const NetId h = deepest_net(c);
      const NetId head = a.op(GateType::kAnd, {h, mode});
      const NetId end = a.chain(head, stages);
      const NetId d = a.op(GateType::kOr, {end, mode});
      const NetId u = a.op(GateType::kDelay, {d});
      const NetId w = a.op(GateType::kDelay, {d});
      a.output(GateType::kXor, {u, w});
      break;
    }
    case FalsePathKind::kStemContradiction: {
      // Two chains from the mode stem itself (the stem must be a dynamic
      // carrier for the paper's stem-correlation rule to consider it), with
      // mirror-image gating; a shallow host net ties the block into the
      // host logic without affecting the false path.
      const NetId nmode = a.op(GateType::kNot, {mode});
      const NetId la = a.chain(mode, stages);
      const NetId ga = a.op(GateType::kAnd, {la, mode});   // needs mode = 1
      const NetId ma = a.op(GateType::kDelay, {ga});
      const NetId ha = a.op(GateType::kAnd, {ma, nmode});  // needs mode = 0
      const NetId lb = a.chain(mode, stages);
      const NetId gb = a.op(GateType::kAnd, {lb, nmode});  // needs mode = 0
      const NetId mb = a.op(GateType::kDelay, {gb});
      const NetId hb = a.op(GateType::kAnd, {mb, mode});   // needs mode = 1
      a.output(GateType::kOr, {ha, hb, shallow_net(c)});
      break;
    }
  }
  c.finalize();
}

}  // namespace waveck::gen
