// Additional arithmetic architectures for the adder/multiplier family
// study: carry-select, Kogge-Stone, Wallace tree.
#include <string>
#include <vector>

#include "gen/builder.hpp"
#include "gen/generators.hpp"

namespace waveck::gen {

using detail::Builder;

Circuit carry_select_adder(unsigned bits, unsigned block) {
  Builder b("csel" + std::to_string(bits) + "x" + std::to_string(block));
  std::vector<NetId> a(bits), bb(bits);
  for (unsigned i = 0; i < bits; ++i) a[i] = b.input("a" + std::to_string(i));
  for (unsigned i = 0; i < bits; ++i) bb[i] = b.input("b" + std::to_string(i));
  const NetId cin = b.input("cin");
  // A constant-0 / constant-1 pair for the speculative carry-ins.
  const NetId n0 = b.op(GateType::kAnd, {a[0], b.op(GateType::kNot, {a[0]})});
  const NetId n1 = b.op(GateType::kNot, {n0});

  NetId block_cin = cin;
  for (unsigned lo = 0; lo < bits; lo += block) {
    const unsigned hi = std::min(bits, lo + block);
    // Two speculative ripples.
    struct Spec {
      std::vector<NetId> sums;
      NetId cout;
    };
    auto ripple = [&](NetId carry_in) {
      Spec s;
      NetId carry = carry_in;
      for (unsigned i = lo; i < hi; ++i) {
        auto [sum, co] = b.full_adder(a[i], bb[i], carry);
        s.sums.push_back(sum);
        carry = co;
      }
      s.cout = carry;
      return s;
    };
    const Spec s0 = ripple(n0);
    const Spec s1 = ripple(n1);
    // Select by the real block carry-in.
    for (unsigned i = lo; i < hi; ++i) {
      const NetId sel =
          b.mux(block_cin, s0.sums[i - lo], s1.sums[i - lo]);
      const NetId out = b.c.add_net("s" + std::to_string(i));
      b.c.add_gate(GateType::kBuf, out, {sel});
      b.c.declare_output(out);
    }
    block_cin = b.named(GateType::kBuf, "bc" + std::to_string(hi),
                        {b.mux(block_cin, s0.cout, s1.cout)});
  }
  b.out(GateType::kBuf, "cout", {block_cin});
  b.c.finalize();
  return b.c;
}

Circuit kogge_stone_adder(unsigned bits) {
  Builder b("ks" + std::to_string(bits));
  std::vector<NetId> a(bits), bb(bits);
  for (unsigned i = 0; i < bits; ++i) a[i] = b.input("a" + std::to_string(i));
  for (unsigned i = 0; i < bits; ++i) bb[i] = b.input("b" + std::to_string(i));
  const NetId cin = b.input("cin");

  // Bit-level generate/propagate; cin folded into stage-0 g of bit 0.
  std::vector<NetId> g(bits), p(bits), psum(bits);
  for (unsigned i = 0; i < bits; ++i) {
    psum[i] = b.op(GateType::kXor, {a[i], bb[i]});
    p[i] = psum[i];
    g[i] = b.op(GateType::kAnd, {a[i], bb[i]});
  }
  g[0] = b.op(GateType::kOr, {g[0], b.op(GateType::kAnd, {p[0], cin})});

  // Prefix network: (g, p) o (g', p') = (g + p g', p p').
  for (unsigned dist = 1; dist < bits; dist <<= 1) {
    std::vector<NetId> ng = g, np = p;
    for (unsigned i = dist; i < bits; ++i) {
      ng[i] = b.op(GateType::kOr,
                   {g[i], b.op(GateType::kAnd, {p[i], g[i - dist]})});
      np[i] = b.op(GateType::kAnd, {p[i], p[i - dist]});
    }
    g = std::move(ng);
    p = std::move(np);
  }

  // carries[i] = carry INTO bit i.
  const NetId s0 = b.named(GateType::kXor, "s0", {psum[0], cin});
  b.c.declare_output(s0);
  for (unsigned i = 1; i < bits; ++i) {
    const NetId sum =
        b.named(GateType::kXor, "s" + std::to_string(i), {psum[i], g[i - 1]});
    b.c.declare_output(sum);
  }
  b.out(GateType::kBuf, "cout", {g[bits - 1]});
  b.c.finalize();
  return b.c;
}

Circuit wallace_multiplier(unsigned bits) {
  Builder b("wal" + std::to_string(bits) + "x" + std::to_string(bits));
  std::vector<NetId> a(bits), bb(bits);
  for (unsigned i = 0; i < bits; ++i) a[i] = b.input("a" + std::to_string(i));
  for (unsigned i = 0; i < bits; ++i) bb[i] = b.input("b" + std::to_string(i));

  // Column-wise partial products.
  const unsigned cols = 2 * bits;
  std::vector<std::vector<NetId>> col(cols);
  for (unsigned i = 0; i < bits; ++i) {
    for (unsigned j = 0; j < bits; ++j) {
      col[i + j].push_back(b.op(GateType::kAnd, {a[i], bb[j]}));
    }
  }

  // 3:2 / 2:2 compression until every column holds at most 2 bits.
  bool again = true;
  while (again) {
    again = false;
    std::vector<std::vector<NetId>> next(cols);
    for (unsigned k = 0; k < cols; ++k) {
      auto& bitsk = col[k];
      std::size_t i = 0;
      while (bitsk.size() - i >= 3) {
        auto [s, co] = b.full_adder(bitsk[i], bitsk[i + 1], bitsk[i + 2]);
        next[k].push_back(s);
        if (k + 1 < cols) next[k + 1].push_back(co);
        i += 3;
      }
      if (bitsk.size() - i == 2 && bitsk.size() + next[k].size() > 2) {
        auto [s, co] = b.half_adder(bitsk[i], bitsk[i + 1]);
        next[k].push_back(s);
        if (k + 1 < cols) next[k + 1].push_back(co);
        i += 2;
      }
      for (; i < bitsk.size(); ++i) next[k].push_back(bitsk[i]);
    }
    col = std::move(next);
    for (unsigned k = 0; k < cols; ++k) {
      if (col[k].size() > 2) again = true;
    }
  }

  // Final carry-propagate ripple over the two rows.
  NetId carry;
  bool have_carry = false;
  for (unsigned k = 0; k < cols; ++k) {
    const auto& bitsk = col[k];
    NetId s;
    NetId co;
    bool have_co = false;
    if (bitsk.empty()) {
      if (!have_carry) continue;  // leading empty columns
      s = carry;
      have_carry = false;
    } else if (bitsk.size() == 1 && !have_carry) {
      s = bitsk[0];
    } else if (bitsk.size() == 1) {
      auto [ss, cc] = b.half_adder(bitsk[0], carry);
      s = ss;
      co = cc;
      have_co = true;
      have_carry = false;
    } else if (!have_carry) {
      auto [ss, cc] = b.half_adder(bitsk[0], bitsk[1]);
      s = ss;
      co = cc;
      have_co = true;
    } else {
      auto [ss, cc] = b.full_adder(bitsk[0], bitsk[1], carry);
      s = ss;
      co = cc;
      have_co = true;
      have_carry = false;
    }
    const NetId out = b.c.add_net("p" + std::to_string(k));
    b.c.add_gate(GateType::kBuf, out, {s});
    b.c.declare_output(out);
    if (have_co) {
      carry = co;
      have_carry = true;
    }
  }
  b.c.finalize();
  return b.c;
}

}  // namespace waveck::gen
