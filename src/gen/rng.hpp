// Deterministic PRNG shared by the circuit generators and the fuzzing
// engine. xorshift64* on purpose: seedable, portable across standard
// libraries (<random> distributions are implementation-defined), and cheap
// enough to re-derive per-run streams by mixing a base seed with a counter.
#pragma once

#include <cstdint>

namespace waveck::gen {

struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed ? seed : 0x9e3779b97f4a7c15) {}
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1d;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
  /// True with probability `percent`/100.
  bool chance(unsigned percent) { return below(100) < percent; }
};

/// SplitMix64 step: derives an independent stream seed from (seed, index)
/// so every fuzz run gets its own reproducible Rng.
[[nodiscard]] inline std::uint64_t mix_seed(std::uint64_t seed,
                                            std::uint64_t index) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15 * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9;
  z = (z ^ (z >> 27)) * 0x94d049bb133111eb;
  return z ^ (z >> 31);
}

}  // namespace waveck::gen
