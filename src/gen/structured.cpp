// Structure-aware random circuit generator (see generators.hpp for the
// knob semantics). The shape controls — weighted gate mix, recency-biased
// fanin, injected false-path blocks — exist so differential fuzzing visits
// the circuit families each verifier stage was built for, not just the
// uniform random DAGs `random_circuit` produces.
#include <algorithm>
#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "gen/rng.hpp"

namespace waveck::gen {
namespace {

struct WeightedType {
  GateType type;
  unsigned weight;
};

GateType pick_type(Rng& rng, const std::vector<WeightedType>& mix,
                   unsigned total) {
  std::uint64_t roll = rng.below(total);
  for (const auto& wt : mix) {
    if (roll < wt.weight) return wt.type;
    roll -= wt.weight;
  }
  return mix.back().type;  // unreachable for a consistent total
}

}  // namespace

Circuit structured_random_circuit(const StructuredCircuitConfig& cfg) {
  Rng rng(cfg.seed);
  Circuit c("sfuzz" + std::to_string(cfg.seed));

  std::vector<NetId> pool;
  pool.reserve(cfg.inputs + cfg.gates);
  for (unsigned i = 0; i < cfg.inputs; ++i) {
    const NetId id = c.add_net("i" + std::to_string(i));
    c.declare_input(id);
    pool.push_back(id);
  }

  std::vector<WeightedType> mix;
  unsigned total = 0;
  const auto add_mix = [&](GateType t, unsigned w) {
    if (w == 0) return;
    mix.push_back({t, w});
    total += w;
  };
  add_mix(GateType::kAnd, cfg.w_and);
  add_mix(GateType::kOr, cfg.w_or);
  add_mix(GateType::kNand, cfg.w_nand);
  add_mix(GateType::kNor, cfg.w_nor);
  add_mix(GateType::kXor, cfg.w_xor);
  add_mix(GateType::kXnor, cfg.w_xnor);
  add_mix(GateType::kNot, cfg.w_not);
  add_mix(GateType::kBuf, cfg.w_buf);
  add_mix(GateType::kMux, cfg.w_mux);
  if (mix.empty()) add_mix(GateType::kAnd, 1);

  // Recency-biased net draw: reconvergent fanout arises when several gates
  // in a row pull from the same small recent window.
  const auto draw = [&]() -> NetId {
    const std::size_t window =
        std::min<std::size_t>(cfg.recent_window ? cfg.recent_window : 1,
                              pool.size());
    if (rng.chance(cfg.reconvergence_percent)) {
      return pool[pool.size() - 1 - rng.below(window)];
    }
    return pool[rng.below(pool.size())];
  };

  for (unsigned g = 0; g < cfg.gates; ++g) {
    const GateType t = pick_type(rng, mix, total);
    std::size_t fanin = 0;
    if (is_unary(t)) {
      fanin = 1;
    } else if (t == GateType::kMux) {
      fanin = 3;
    } else if (is_xor_like(t)) {
      fanin = 2;
    } else {
      fanin = 2 + rng.below(2);
    }
    std::vector<NetId> ins;
    ins.reserve(fanin);
    for (std::size_t i = 0; i < fanin; ++i) {
      NetId pick = draw();
      // Redraw a couple of times to avoid degenerate duplicate fanin
      // (XOR(a,a) is a constant); keep the duplicate if chance insists —
      // constants are legal circuits and worth fuzzing occasionally.
      for (int tries = 0; tries < 2; ++tries) {
        bool dup = false;
        for (NetId have : ins) dup = dup || have == pick;
        if (!dup) break;
        pick = draw();
      }
      ins.push_back(pick);
    }
    const NetId out = c.add_net("g" + std::to_string(g));
    c.add_gate(t, out, std::move(ins));
    pool.push_back(out);
  }

  const unsigned outs =
      std::max(1u, std::min<unsigned>(cfg.outputs, cfg.gates ? cfg.gates : 1));
  for (unsigned i = 0; i < outs && i < pool.size(); ++i) {
    c.declare_output(pool[pool.size() - 1 - i]);
  }
  c.finalize();

  static constexpr FalsePathKind kKinds[] = {
      FalsePathKind::kLocalChain, FalsePathKind::kDominatorDiamond,
      FalsePathKind::kStemContradiction};
  for (unsigned b = 0; b < cfg.false_path_blocks; ++b) {
    append_false_path_block(c, kKinds[b % 3], cfg.false_path_stages,
                            "fp" + std::to_string(b));
  }

  // Randomized per-gate delay annotation, after the false-path blocks so
  // their gates get annotated too. Iteration is by gate index: stable.
  const std::int64_t dmax_cap = cfg.delay_max > 0 ? cfg.delay_max : 1;
  for (GateId gid : c.all_gates()) {
    const auto hi = static_cast<std::int64_t>(
        1 + rng.below(static_cast<std::uint64_t>(dmax_cap)));
    const auto lo = cfg.delay_intervals
                        ? static_cast<std::int64_t>(
                              rng.below(static_cast<std::uint64_t>(hi + 1)))
                        : hi;
    c.gate_mut(gid).delay = DelaySpec(lo, hi);
  }
  return c;
}

}  // namespace waveck::gen
