#include "gen/iscas_suite.hpp"

#include <stdexcept>

#include "common/time.hpp"
#include "gen/generators.hpp"
#include "netlist/topo_delay.hpp"
#include "netlist/transforms.hpp"

namespace waveck::gen {
namespace {

/// Depth of the circuit in gates.
unsigned unit_depth(const Circuit& c) {
  Circuit copy = c;
  copy.set_uniform_delay(DelaySpec::fixed(1));
  const Time t = topological_delay(copy);
  return t.is_finite() ? static_cast<unsigned>(t.value()) : 0;
}

/// Threads a mode-gated bypass block through the circuit, long enough that
/// after NOR mapping the block's path is the critical one. This recreates
/// the suite's documented false-path profile (see generators.hpp): which
/// circuits the paper closed by plain narrowing, which needed the global
/// dominator implications, and which needed stem correlation.
Circuit with_false_path(Circuit c, FalsePathKind kind) {
  append_false_path_block(c, kind, 2 * unit_depth(c) + 8);
  return c;
}

}  // namespace

Circuit build_raw(const std::string& name) {
  if (name == "c17") return c17();
  if (name == "c432") return priority_controller(9);  // 27-ch interrupt ctrl
  if (name == "c499") return ecc_corrector(32, false);  // 32-bit SEC
  if (name == "c880") return alu({.width = 8, .with_subtract = true,
                                  .with_flags = true, .with_parity = false});
  if (name == "c1355") {
    // c1355 is c499 with the XOR gates expanded into NAND equivalents; the
    // solver-level decomposition models the expansion, the NOR mapping does
    // the rest.
    return decompose_for_solver(ecc_corrector(32, false));
  }
  // Paper Table 1: G.I.T.D. eliminated the violations of c1908 and c3540.
  if (name == "c1908") {
    return with_false_path(ecc_corrector(16, true),  // 16-bit SEC/DED
                           FalsePathKind::kDominatorDiamond);
  }
  // Paper Table 1: stem correlation eliminated c2670 and c6288.
  if (name == "c2670") {
    return with_false_path(
        alu({.width = 12, .with_subtract = true, .with_flags = true,
             .with_parity = true}),
        FalsePathKind::kStemContradiction);
  }
  if (name == "c3540") {
    return with_false_path(
        alu({.width = 8, .with_subtract = true, .with_flags = true,
             .with_parity = true}),
        FalsePathKind::kDominatorDiamond);
  }
  // Paper Table 1: plain narrowing eliminated c5315 and c7552.
  if (name == "c5315") {
    return with_false_path(
        alu({.width = 9, .with_subtract = true, .with_flags = true,
             .with_parity = true}),
        FalsePathKind::kLocalChain);
  }
  if (name == "c6288") {
    // 16x16 array multiplier with a carry-skip final row: the upper product
    // bits' full-ripple paths are false, and witnessing the exact delay
    // needs deep search (the paper's abandoned 'A' row), while the stem
    // block reproduces the stem-correlation-closes-the-proof behaviour.
    return with_false_path(array_multiplier(16, /*skip_final_adder=*/true),
                           FalsePathKind::kStemContradiction);
  }
  if (name == "c7552") {
    return with_false_path(adder_comparator(32),  // 32-bit add+compare
                           FalsePathKind::kLocalChain);
  }
  throw std::invalid_argument("unknown suite circuit: " + name);
}

Circuit prepare_for_experiment(const Circuit& raw, std::int64_t gate_delay) {
  Circuit mapped = map_to_nor(raw);
  mapped.set_uniform_delay(DelaySpec::fixed(gate_delay));
  mapped.set_name(raw.name() + "-nor");
  return mapped;
}

std::vector<SuiteEntry> table1_suite(bool small_only) {
  struct Spec {
    const char* name;
    const char* label;
    std::size_t max_backtracks;
    bool small;
  };
  // Backtrack budgets mirror the paper's behaviour: every circuit completes
  // except the multiplier, which is abandoned (Table 1's 'A' row).
  static const Spec kSpecs[] = {
      {"c17", "c17", 1000, true},
      {"c432", "c432-analog", 20000, true},
      {"c499", "c499-analog", 20000, false},
      {"c880", "c880-analog", 20000, true},
      {"c1355", "c1355-analog", 20000, false},
      {"c1908", "c1908-analog", 20000, false},
      {"c2670", "c2670-analog", 20000, false},
      {"c3540", "c3540-analog", 20000, false},
      {"c5315", "c5315-analog", 20000, false},
      {"c6288", "c6288-analog", 500, false},
      {"c7552", "c7552-analog", 20000, false},
  };
  std::vector<SuiteEntry> suite;
  for (const Spec& spec : kSpecs) {
    if (small_only && !spec.small) continue;
    suite.push_back(SuiteEntry{spec.label,
                               prepare_for_experiment(build_raw(spec.name)),
                               spec.max_backtracks});
  }
  return suite;
}

}  // namespace waveck::gen
