#include "common/time.hpp"

#include <ostream>

namespace waveck {

std::string Time::str() const {
  if (is_neg_inf()) return "-inf";
  if (is_pos_inf()) return "+inf";
  return std::to_string(v_);
}

std::ostream& operator<<(std::ostream& os, Time t) { return os << t.str(); }

}  // namespace waveck
