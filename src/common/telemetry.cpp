#include "common/telemetry.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace waveck::telemetry {

namespace detail {
std::atomic<TraceSink*> g_trace_sink{nullptr};
}  // namespace detail

namespace {
thread_local Registry* t_registry = nullptr;
thread_local int t_worker_id = 0;
thread_local SpanContext t_span;
// Atomic so the SIGPROF handler's read is async-signal-safe.
thread_local std::atomic<const char*> t_stage_mark{nullptr};
thread_local std::atomic<const char*> t_check_mark{nullptr};
std::atomic<std::int64_t> g_next_check_id{0};
}  // namespace

void set_trace_sink(TraceSink* sink) {
  detail::g_trace_sink.store(sink, std::memory_order_release);
}

int worker_id() { return t_worker_id; }
void set_worker_id(int id) { t_worker_id = id; }

const char* stage_mark() {
  return t_stage_mark.load(std::memory_order_relaxed);
}
void set_stage_mark(const char* stage) {
  t_stage_mark.store(stage, std::memory_order_relaxed);
}
const char* check_mark() {
  return t_check_mark.load(std::memory_order_relaxed);
}
void set_check_mark(const char* check) {
  t_check_mark.store(check, std::memory_order_relaxed);
}

SpanContext& span_context() { return t_span; }

ScopedCheckSpan::ScopedCheckSpan()
    : id_(g_next_check_id.fetch_add(1, std::memory_order_relaxed) + 1),
      prev_(t_span) {
  t_span = SpanContext{id_, -1};
}

ScopedCheckSpan::~ScopedCheckSpan() { t_span = prev_; }

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry& Registry::current() {
  return t_registry != nullptr ? *t_registry : global();
}

Registry* Registry::exchange_thread_registry(Registry* r) {
  Registry* prev = t_registry;
  t_registry = r;
  return prev;
}

namespace {

template <class Table>
auto& lookup(std::mutex& mu, Table& table, std::string_view name) {
  const std::scoped_lock lock(mu);
  const auto it = table.find(name);
  if (it != table.end()) return it->second;
  return table.try_emplace(std::string(name)).first->second;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return lookup(mu_, counters_, name);
}
Gauge& Registry::gauge(std::string_view name) {
  return lookup(mu_, gauges_, name);
}
Histogram& Registry::histogram(std::string_view name) {
  return lookup(mu_, histograms_, name);
}
TimeHistogram& Registry::time_histogram(std::string_view name) {
  return lookup(mu_, time_histograms_, name);
}
StageTimer& Registry::timer(std::string_view name) {
  return lookup(mu_, timers_, name);
}

double TimeHistogram::quantile_us(double q) const {
  std::array<std::uint64_t, kBuckets> b{};
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    b[i] = bucket(i);
    total += b[i];
  }
  if (total == 0) return 0.0;
  q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (b[i] == 0) continue;
    const double next = cum + static_cast<double>(b[i]);
    if (next >= target) {
      if (i == kBuckets - 1) {
        return static_cast<double>(kBoundsUs.back());  // overflow bucket
      }
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(kBoundsUs[i - 1]);
      const double upper = static_cast<double>(kBoundsUs[i]);
      const double frac = (target - cum) / static_cast<double>(b[i]);
      return lower + frac * (upper - lower);
    }
    cum = next;
  }
  return static_cast<double>(kBoundsUs.back());
}

double Histogram::quantile(double q) const {
  std::array<std::uint64_t, kBuckets> b{};
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    b[i] = bucket(i);
    total += b[i];
  }
  if (total == 0) return 0.0;
  q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (b[i] == 0) continue;
    const double next = cum + static_cast<double>(b[i]);
    if (next >= target) {
      if (i == 0) return 0.0;  // bucket 0 holds exact zeros
      const double lower = static_cast<double>(bucket_lower_bound(i));
      // The overflow bucket has no upper bound; assume one bucket width.
      const double upper = 2.0 * lower;
      const double frac =
          (target - cum) / static_cast<double>(b[i]);
      return lower + frac * (upper - lower);
    }
    cum = next;
  }
  return static_cast<double>(bucket_lower_bound(kBuckets - 1)) * 2.0;
}

void Registry::merge_from(const Registry& other) {
  // `other` must be quiescent (a finished worker's registry); take only its
  // structural lock. Lock order global-then-worker is the only one used.
  const std::scoped_lock other_lock(other.mu_);
  for (const auto& [name, c] : other.counters_) counter(name).add(c.value());
  for (const auto& [name, g] : other.gauges_) {
    Gauge& mine = gauge(name);
    mine.add(g.value());
    mine.raise_high_water(g.high_water());  // peak = max over workers
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name).merge_from(h);
  }
  for (const auto& [name, h] : other.time_histograms_) {
    time_histogram(name).merge_from(h);
  }
  for (const auto& [name, t] : other.timers_) {
    timer(name).add(t.calls(), t.total_ns());
  }
}

std::string Registry::to_json() const {
  const std::scoped_lock lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << '"' << json_escape(name)
       << "\":" << c.value();
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << '"' << json_escape(name)
       << "\":{\"value\":" << g.value() << ",\"max\":" << g.high_water()
       << "}";
    first = false;
  }
  os << "},\"timers\":{";
  first = true;
  for (const auto& [name, t] : timers_) {
    os << (first ? "" : ",") << '"' << json_escape(name)
       << "\":{\"calls\":" << t.calls() << ",\"seconds\":"
       << fmt_double(t.seconds()) << "}";
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << '"' << json_escape(name)
       << "\":{\"count\":" << h.count() << ",\"sum\":" << h.sum()
       << ",\"buckets\":[";
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      os << (i ? "," : "") << h.bucket(i);
    }
    os << "],\"p50\":" << fmt_double(h.quantile(0.50))
       << ",\"p90\":" << fmt_double(h.quantile(0.90))
       << ",\"p99\":" << fmt_double(h.quantile(0.99)) << "}";
    first = false;
  }
  os << "},\"time_histograms\":{";
  first = true;
  for (const auto& [name, h] : time_histograms_) {
    os << (first ? "" : ",") << '"' << json_escape(name)
       << "\":{\"count\":" << h.count() << ",\"sum_us\":" << h.sum_us()
       << ",\"buckets\":[";
    for (std::size_t i = 0; i < TimeHistogram::kBuckets; ++i) {
      os << (i ? "," : "") << h.bucket(i);
    }
    os << "],\"p50_us\":" << fmt_double(h.quantile_us(0.50))
       << ",\"p90_us\":" << fmt_double(h.quantile_us(0.90))
       << ",\"p99_us\":" << fmt_double(h.quantile_us(0.99)) << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

namespace {

/// Prometheus metric-name mangling: dots and any other non-identifier
/// character become underscores ("serve.latency.queued_us" under prefix
/// "waveck" -> "waveck_serve_latency_queued_us").
std::string prom_name(std::string_view prefix, std::string_view name) {
  std::string out;
  out.reserve(prefix.size() + name.size() + 1);
  out.append(prefix);
  out.push_back('_');
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void prom_type(std::ostringstream& os, const std::string& name,
               const char* type) {
  os << "# TYPE " << name << ' ' << type << '\n';
}

}  // namespace

std::string Registry::to_prometheus(std::string_view prefix) const {
  const std::scoped_lock lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    const std::string n = prom_name(prefix, name) + "_total";
    prom_type(os, n, "counter");
    os << n << ' ' << c.value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    const std::string n = prom_name(prefix, name);
    prom_type(os, n, "gauge");
    os << n << ' ' << g.value() << '\n';
    prom_type(os, n + "_max", "gauge");
    os << n << "_max " << g.high_water() << '\n';
  }
  for (const auto& [name, t] : timers_) {
    const std::string n = prom_name(prefix, name);
    prom_type(os, n + "_seconds_total", "counter");
    os << n << "_seconds_total " << fmt_double(t.seconds()) << '\n';
    prom_type(os, n + "_calls_total", "counter");
    os << n << "_calls_total " << t.calls() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = prom_name(prefix, name);
    prom_type(os, n, "histogram");
    // Pow2 bucket i covers [2^(i-1), 2^i); in integer terms its inclusive
    // upper bound is 2^i - 1, which is what `le` wants.
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
      cum += h.bucket(i);
      os << n << "_bucket{le=\""
         << (Histogram::bucket_lower_bound(i + 1) - 1) << "\"} " << cum
         << '\n';
    }
    cum += h.bucket(Histogram::kBuckets - 1);
    os << n << "_bucket{le=\"+Inf\"} " << cum << '\n';
    os << n << "_sum " << h.sum() << '\n';
    os << n << "_count " << h.count() << '\n';
  }
  for (const auto& [name, h] : time_histograms_) {
    const std::string n = prom_name(prefix, name);
    prom_type(os, n, "histogram");
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < TimeHistogram::kBoundsUs.size(); ++i) {
      cum += h.bucket(i);
      os << n << "_bucket{le=\"" << TimeHistogram::kBoundsUs[i] << "\"} "
         << cum << '\n';
    }
    cum += h.bucket(TimeHistogram::kBuckets - 1);
    os << n << "_bucket{le=\"+Inf\"} " << cum << '\n';
    os << n << "_sum " << h.sum_us() << '\n';
    os << n << "_count " << h.count() << '\n';
  }
  return os.str();
}

void Registry::reset() {
  const std::scoped_lock lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
  for (auto& [name, h] : time_histograms_) h.reset();
  for (auto& [name, t] : timers_) t.reset();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

JsonlTraceSink::JsonlTraceSink(std::ostream& os)
    : os_(&os), start_(std::chrono::steady_clock::now()) {}

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : file_(path), os_(&file_), start_(std::chrono::steady_clock::now()) {
  if (!file_) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
}

void JsonlTraceSink::event(std::string_view name,
                           std::span<const TraceField> fields) {
  const auto t = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
  // Format the whole line locally, then write it under the mutex: lines
  // from concurrent workers stay valid JSONL (one object per line).
  std::ostringstream line;
  line << ",\"t\":" << t << ",\"w\":" << worker_id();
  const SpanContext& span = span_context();
  if (span.chk >= 0) line << ",\"chk\":" << span.chk;
  if (span.dec >= 0) line << ",\"dec\":" << span.dec;
  for (const TraceField& f : fields) {
    line << ",\"" << json_escape(f.key) << "\":";
    switch (f.kind) {
      case TraceField::Kind::kInt: line << f.i; break;
      case TraceField::Kind::kDouble: line << fmt_double(f.d); break;
      case TraceField::Kind::kBool: line << (f.b ? "true" : "false"); break;
      case TraceField::Kind::kString:
        line << '"' << json_escape(f.s) << '"';
        break;
    }
  }
  line << "}\n";
  const std::string body = line.str();
  const std::scoped_lock lock(mu_);
  *os_ << "{\"ev\":\"" << json_escape(name)
       << "\",\"seq\":" << seq_.fetch_add(1, std::memory_order_relaxed) + 1
       << body;
}

}  // namespace waveck::telemetry
