#include "common/telemetry.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace waveck::telemetry {

namespace detail {
TraceSink* g_trace_sink = nullptr;
}  // namespace detail

void set_trace_sink(TraceSink* sink) { detail::g_trace_sink = sink; }

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

namespace {

template <class Table>
auto& lookup(Table& table, std::string_view name) {
  const auto it = table.find(name);
  if (it != table.end()) return it->second;
  return table.emplace(std::string(name), typename Table::mapped_type{})
      .first->second;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return lookup(counters_, name);
}
Gauge& Registry::gauge(std::string_view name) { return lookup(gauges_, name); }
Histogram& Registry::histogram(std::string_view name) {
  return lookup(histograms_, name);
}
StageTimer& Registry::timer(std::string_view name) {
  return lookup(timers_, name);
}

std::string Registry::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << '"' << json_escape(name)
       << "\":" << c.value();
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << '"' << json_escape(name)
       << "\":" << g.value();
    first = false;
  }
  os << "},\"timers\":{";
  first = true;
  for (const auto& [name, t] : timers_) {
    os << (first ? "" : ",") << '"' << json_escape(name)
       << "\":{\"calls\":" << t.calls() << ",\"seconds\":"
       << fmt_double(t.seconds()) << "}";
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << '"' << json_escape(name)
       << "\":{\"count\":" << h.count() << ",\"sum\":" << h.sum()
       << ",\"buckets\":[";
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      os << (i ? "," : "") << h.bucket(i);
    }
    os << "]}";
    first = false;
  }
  os << "}}";
  return os.str();
}

void Registry::reset() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
  for (auto& [name, t] : timers_) t.reset();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

JsonlTraceSink::JsonlTraceSink(std::ostream& os)
    : os_(&os), start_(std::chrono::steady_clock::now()) {}

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : file_(path), os_(&file_), start_(std::chrono::steady_clock::now()) {
  if (!file_) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
}

void JsonlTraceSink::event(std::string_view name,
                           std::span<const TraceField> fields) {
  const auto t = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
  std::ostream& os = *os_;
  os << "{\"ev\":\"" << json_escape(name) << "\",\"seq\":" << ++seq_
     << ",\"t\":" << t;
  for (const TraceField& f : fields) {
    os << ",\"" << json_escape(f.key) << "\":";
    switch (f.kind) {
      case TraceField::Kind::kInt: os << f.i; break;
      case TraceField::Kind::kDouble: os << fmt_double(f.d); break;
      case TraceField::Kind::kBool: os << (f.b ? "true" : "false"); break;
      case TraceField::Kind::kString:
        os << '"' << json_escape(f.s) << '"';
        break;
    }
  }
  os << "}\n";
}

}  // namespace waveck::telemetry
