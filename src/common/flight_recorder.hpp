// Always-on flight recorder: a lock-free, fixed-size per-thread ring of
// compact binary records mirroring the JSONL trace schema (check and stage
// spans, FAN decisions/backtracks, cache hits, serve request lifecycle).
//
// Unlike the trace sink — opt-in, allocating, unbounded — the recorder is
// meant to stay on in production: each record is one 64-byte struct copy
// into a thread-local ring plus one release store, with no allocation, no
// locks and no formatting on the hot path. The rings hold the last ~4096
// records per thread; when something goes wrong (watchdog stall, deadline
// expiry, fatal signal, explicit `--blackbox DIR`) the rings are merged
// chronologically and dumped as explain-compatible JSONL, so `waveck
// explain` can reconstruct the final seconds before the incident.
//
// Concurrency model: each ring has exactly one writer (its owning thread).
// The head index is published with a release store after the record body,
// and readers re-check the head after copying to discard records that were
// overwritten mid-read (seqlock-style). Ring slots are never reclaimed, so
// a post-mortem dump still sees rings of threads that have exited.
//
// The fatal-signal path (`dump_signal_safe`) uses only async-signal-safe
// operations: no allocation, no locks, manual integer formatting, write(2).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace waveck::flight {

/// Record kind. The dump writer maps each kind back to the trace event name
/// and field set the offline analyzer already understands
/// (doc/OBSERVABILITY.md has the full correspondence table).
enum class Kind : std::uint8_t {
  kNone = 0,       // unwritten slot
  kCheckBegin,     // check_begin   name=output     a=delta
  kCheckEnd,       // check_end     name=output     a=duration_ns aux=conclusion
  kStageBegin,     // stage_begin   name=stage
  kStageEnd,       // stage_end     name=stage      aux=status
  kDecision,       // decision      name=net        a=parent b=depth aux=cls
  kDecisionClose,  // decision_close                aux=outcome
  kBacktrack,      // backtrack     name=net        b=depth aux=cls
  kConflict,       // conflict                      b=depth
  kSpurious,       // spurious_vector               b=depth
  kPropagate,      // propagate     a=applications  b=revisions aux=consistent
  kCache,          // cache                         aux=0 hit / 1 miss / 2 dom
  kGitdRound,      // gitd_round    a=narrowed
  kStem,           // stem          name=net
  kServeRequest,   // serve_request name=op         a=queue depth after
  kServeResponse,  // serve_response name=op/error  a=bytes aux=ok
  kServeBatch,     // serve_batch   name=circuit    a=group size b=unique runs
  kMark,           // mark          name=label (watchdog_stall, debug_stall...)
  kMaxKind = kMark,
};

// Conclusion / status / outcome codes carried in Record::aux. These mirror
// the engine's to_string tables (verifier.hpp) so the dump renders the
// exact strings the analyzer expects, without common/ depending on verify/.
inline constexpr std::uint8_t kConclusionN = 0;  // "N"
inline constexpr std::uint8_t kConclusionV = 1;  // "V"
inline constexpr std::uint8_t kConclusionA = 2;  // "A"
inline constexpr std::uint8_t kConclusionP = 3;  // "P"
inline constexpr std::uint8_t kStageNotRun = 0;     // "-"
inline constexpr std::uint8_t kStagePossible = 1;   // "P"
inline constexpr std::uint8_t kStageNoViolation = 2;  // "N"
inline constexpr std::uint8_t kOutcomeExhausted = 0;
inline constexpr std::uint8_t kOutcomeWitness = 1;
inline constexpr std::uint8_t kOutcomeAbandoned = 2;
inline constexpr std::uint8_t kOutcomeTruncated = 3;  // synthetic (dump tail)
inline constexpr std::uint8_t kCacheHit = 0;
inline constexpr std::uint8_t kCacheMiss = 1;
inline constexpr std::uint8_t kCacheDomRebuild = 2;

/// Bytes of name payload a record can carry (longer names are truncated;
/// the name is stored inline so a record stays valid after the string it
/// was copied from — a circuit unloaded by the serve daemon, say — is gone).
inline constexpr std::size_t kNameCap = 21;

/// One 64-byte flight record. Plain data so the ring write is a struct
/// copy; read back with strnlen-capped name access (no NUL at full width).
struct Record {
  std::uint64_t t_ns;   // CLOCK_MONOTONIC timestamp
  std::int64_t chk;     // enclosing check span id (-1 outside any check)
  std::int64_t dec;     // enclosing decision id (-1 at the search root)
  std::int64_t a;       // kind-specific (see Kind comments)
  std::int64_t b;       // kind-specific
  char name[kNameCap];  // kind-specific, truncated, not NUL-padded at cap
  std::uint8_t kind;    // Kind
  std::uint8_t aux;     // kind-specific small code
  std::uint8_t w;       // worker id of the recording thread (clamped to 255)
};
static_assert(sizeof(Record) == 64, "flight records must stay cache-line");

/// Single-writer ring of the last kCapacity records of one thread.
class Ring {
 public:
  static constexpr std::size_t kCapacity = 4096;  // power of two, 256 KiB

  void push(const Record& r) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    slots_[h & (kCapacity - 1)] = r;
    head_.store(h + 1, std::memory_order_release);
  }
  [[nodiscard]] std::uint64_t head() const {
    return head_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const Record& slot(std::uint64_t i) const {
    return slots_[i & (kCapacity - 1)];
  }
  /// Test hook: forgets every record (readers see an empty ring). Racing a
  /// concurrent push is the caller's hazard.
  void reset_for_test() { head_.store(0, std::memory_order_release); }

 private:
  std::atomic<std::uint64_t> head_{0};
  Record slots_[kCapacity] = {};
};

namespace detail {
extern std::atomic<bool> g_enabled;
Ring* claim_ring();  // registers the calling thread's ring (slow path)
extern thread_local Ring* t_ring;
}  // namespace detail

/// Whether recording is on. Defaults to true (always-on observability);
/// WAVECK_FLIGHT=0 in the environment or set_enabled(false) turns it off.
/// One relaxed load — the same cost discipline as trace_enabled().
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Appends one record to the calling thread's ring (claiming a ring slot on
/// first use; drops the record if the 64-slot thread table is full). Fields
/// `chk`/`dec` are captured from telemetry::span_context(), `w` from
/// telemetry::worker_id(). No-op when `enabled()` is false.
void record(Kind kind, std::string_view name = {}, std::int64_t a = 0,
            std::int64_t b = 0, std::uint8_t aux = 0);

/// Snapshot of how much the recorder has seen — for tests and the dump
/// header. `dropped` counts records discarded because the thread table was
/// full; `rings` the number of registered threads.
struct RecorderStats {
  int rings = 0;
  std::uint64_t records = 0;  // sum of ring heads (includes overwritten)
};
[[nodiscard]] RecorderStats stats();

/// Zeroes every ring (head reset; slots cleared lazily by overwrite being
/// ignored — a reset ring reports no records). Test hook; not signal-safe.
void reset_for_test();

/// Merged chronological dump of every ring as explain-compatible JSONL:
/// a leading `fr_dump` header event (reason, ring/record/drop counts), then
/// one trace-schema line per surviving record. Records belonging to checks
/// whose check_begin was already overwritten are dropped, and still-open
/// spans get synthetic closes appended (decision_close/stage_end/check_end
/// with outcome "truncated"), so `explain::analyze_trace` reports
/// well_formed() == true on every dump this writer produces.
void dump(std::ostream& os, std::string_view reason);

/// Async-signal-safe variant for the fatal-signal handler: streams a k-way
/// merge of the rings to `fd` with manual formatting and write(2). Does not
/// sanitize (a crashing process gets raw data; explain tolerates truncated
/// traces with warnings). Disables recording first so the dump is stable.
void dump_signal_safe(int fd, const char* reason);

// ---------------------------------------------------------------------------
// Blackbox: where automatic dumps land.
// ---------------------------------------------------------------------------

/// Sets (or, with "", clears) the directory automatic dumps are written to.
/// Dump files are named flight-<reason>-<pid>-<n>.jsonl.
void set_blackbox_dir(std::string dir);
[[nodiscard]] std::string blackbox_dir();
[[nodiscard]] bool blackbox_enabled();

/// Writes a dump into the blackbox directory, rate-limited per reason (a
/// serve daemon shedding load must not grind writing dumps): at most one
/// dump per reason per `cooldown_ns` (default 5 s; pass 0 to force).
/// Returns the path written, or "" when disabled, rate-limited, or the
/// file could not be opened.
std::string dump_blackbox(const char* reason,
                          std::uint64_t cooldown_ns = 5'000'000'000ULL);

/// Installs SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL handlers that write a
/// signal-safe dump to <blackbox_dir>/flight-fatal-<pid>.jsonl and re-raise
/// the default disposition. Requires set_blackbox_dir() first (the full
/// path is precomputed here; the handler itself formats nothing).
void install_fatal_handlers();

}  // namespace waveck::flight
