#include "common/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <unordered_set>
#include <vector>

#include "common/telemetry.hpp"

namespace waveck::flight {

namespace detail {

namespace {
bool initial_enabled() {
  const char* env = std::getenv("WAVECK_FLIGHT");
  return env == nullptr || std::strcmp(env, "0") != 0;
}
}  // namespace

std::atomic<bool> g_enabled{initial_enabled()};
thread_local Ring* t_ring = nullptr;

namespace {
constexpr int kMaxRings = 64;
// Ring pointers are published with release stores and never retired: a
// thread that exits leaves its ring behind for post-mortem dumps, and the
// fatal-signal path can walk the table without locks.
std::atomic<Ring*> g_rings[kMaxRings];
std::atomic<int> g_ring_count{0};
std::mutex g_claim_mu;
thread_local bool t_claim_failed = false;

std::uint64_t now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}
}  // namespace

Ring* claim_ring() {
  if (t_claim_failed) return nullptr;
  std::lock_guard<std::mutex> lock(g_claim_mu);
  const int idx = g_ring_count.load(std::memory_order_relaxed);
  if (idx >= kMaxRings) {
    t_claim_failed = true;
    return nullptr;
  }
  Ring* r = new Ring();  // intentionally never freed (post-mortem data)
  g_rings[idx].store(r, std::memory_order_release);
  g_ring_count.store(idx + 1, std::memory_order_release);
  t_ring = r;
  return r;
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void record(Kind kind, std::string_view name, std::int64_t a, std::int64_t b,
            std::uint8_t aux) {
  if (!enabled()) return;
  Ring* r = detail::t_ring;
  if (r == nullptr) {
    r = detail::claim_ring();
    if (r == nullptr) return;
  }
  Record rec{};
  rec.t_ns = detail::now_ns();
  const telemetry::SpanContext& ctx = telemetry::span_context();
  rec.chk = ctx.chk;
  rec.dec = ctx.dec;
  rec.a = a;
  rec.b = b;
  const std::size_t n = std::min(name.size(), kNameCap);
  std::memcpy(rec.name, name.data(), n);
  rec.kind = static_cast<std::uint8_t>(kind);
  rec.aux = aux;
  const int w = telemetry::worker_id();
  rec.w = static_cast<std::uint8_t>(w < 0 ? 0 : (w > 255 ? 255 : w));
  r->push(rec);
}

RecorderStats stats() {
  RecorderStats s;
  s.rings = detail::g_ring_count.load(std::memory_order_acquire);
  for (int i = 0; i < s.rings; ++i) {
    Ring* r = detail::g_rings[i].load(std::memory_order_acquire);
    if (r != nullptr) s.records += r->head();
  }
  return s;
}

void reset_for_test() {
  // Heads are advanced by owning threads only; a concurrent push during a
  // test reset is the test's hazard. Resetting the head to 0 makes the ring
  // report no readable records without touching slot contents.
  const int n = detail::g_ring_count.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    Ring* r = detail::g_rings[i].load(std::memory_order_acquire);
    if (r != nullptr) r->reset_for_test();
  }
}

// ---------------------------------------------------------------------------
// Rendering. One shared formatter serves both the sanitizing ostream writer
// and the async-signal-safe fd writer: everything below formats into a
// caller-provided buffer with no allocation, locks, or stdio.
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kLineCap = 512;

struct Buf {
  char* p;
  char* end;

  void ch(char c) {
    if (p < end) *p++ = c;
  }
  void lit(const char* s) {
    while (*s != '\0' && p < end) *p++ = *s++;
  }
  void u64(std::uint64_t v) {
    char tmp[20];
    int n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) ch(tmp[--n]);
  }
  void i64(std::int64_t v) {
    if (v < 0) {
      ch('-');
      u64(static_cast<std::uint64_t>(-(v + 1)) + 1);
    } else {
      u64(static_cast<std::uint64_t>(v));
    }
  }
  /// JSON string body with minimal escaping; bytes >= 0x7f become '?' so a
  /// name truncated mid-UTF-8-sequence cannot produce invalid output.
  void jstr(const char* s, std::size_t n) {
    ch('"');
    for (std::size_t i = 0; i < n; ++i) {
      const unsigned char c = static_cast<unsigned char>(s[i]);
      if (c == '"' || c == '\\') {
        ch('\\');
        ch(static_cast<char>(c));
      } else if (c < 0x20) {
        lit("\\u00");
        static constexpr char kHex[] = "0123456789abcdef";
        ch(kHex[c >> 4]);
        ch(kHex[c & 0xf]);
      } else if (c >= 0x7f) {
        ch('?');
      } else {
        ch(static_cast<char>(c));
      }
    }
    ch('"');
  }
  void key(const char* k) {
    ch(',');
    ch('"');
    lit(k);
    lit("\":");
  }
  void key_str(const char* k, const char* s, std::size_t n) {
    key(k);
    jstr(s, n);
  }
  void key_i64(const char* k, std::int64_t v) {
    key(k);
    i64(v);
  }
  void key_bool(const char* k, bool b) {
    key(k);
    lit(b ? "true" : "false");
  }
  /// ns duration rendered as seconds with 9 fractional digits.
  void key_seconds(const char* k, std::int64_t ns) {
    key(k);
    if (ns < 0) ns = 0;
    u64(static_cast<std::uint64_t>(ns) / 1'000'000'000ULL);
    ch('.');
    std::uint64_t frac = static_cast<std::uint64_t>(ns) % 1'000'000'000ULL;
    char tmp[9];
    for (int i = 8; i >= 0; --i) {
      tmp[i] = static_cast<char>('0' + frac % 10);
      frac /= 10;
    }
    for (char c : tmp) ch(c);
  }
};

const char* conclusion_str(std::uint8_t code) {
  switch (code) {
    case kConclusionN: return "N";
    case kConclusionV: return "V";
    case kConclusionA: return "A";
    case kConclusionP: return "P";
  }
  return "?";
}

const char* stage_status_str(std::uint8_t code) {
  switch (code) {
    case kStageNotRun: return "-";
    case kStagePossible: return "P";
    case kStageNoViolation: return "N";
  }
  return "?";
}

const char* outcome_str(std::uint8_t code) {
  switch (code) {
    case kOutcomeExhausted: return "exhausted";
    case kOutcomeWitness: return "witness";
    case kOutcomeAbandoned: return "abandoned";
    case kOutcomeTruncated: return "truncated";
  }
  return "?";
}

const char* cache_kind_str(std::uint8_t code) {
  switch (code) {
    case kCacheHit: return "hit";
    case kCacheMiss: return "miss";
    case kCacheDomRebuild: return "dom_rebuild";
  }
  return "?";
}

std::size_t name_len(const Record& r) {
  std::size_t n = 0;
  while (n < kNameCap && r.name[n] != '\0') ++n;
  return n;
}

/// Renders one record as a trace-schema JSONL line (with trailing newline).
/// `t0` rebases timestamps so the dump starts at t=0. Returns the number of
/// bytes written to `out` (at most `cap`); async-signal-safe.
std::size_t format_record(const Record& r, std::uint64_t seq, std::uint64_t t0,
                          char* out, std::size_t cap) {
  const auto kind = static_cast<Kind>(r.kind);
  const char* ev = nullptr;
  switch (kind) {
    case Kind::kCheckBegin: ev = "check_begin"; break;
    case Kind::kCheckEnd: ev = "check_end"; break;
    case Kind::kStageBegin: ev = "stage_begin"; break;
    case Kind::kStageEnd: ev = "stage_end"; break;
    case Kind::kDecision: ev = "decision"; break;
    case Kind::kDecisionClose: ev = "decision_close"; break;
    case Kind::kBacktrack: ev = "backtrack"; break;
    case Kind::kConflict: ev = "conflict"; break;
    case Kind::kSpurious: ev = "spurious_vector"; break;
    case Kind::kPropagate: ev = "propagate"; break;
    case Kind::kCache: ev = "cache"; break;
    case Kind::kGitdRound: ev = "gitd_round"; break;
    case Kind::kStem: ev = "stem"; break;
    case Kind::kServeRequest: ev = "serve_request"; break;
    case Kind::kServeResponse: ev = "serve_response"; break;
    case Kind::kServeBatch: ev = "serve_batch"; break;
    case Kind::kMark: ev = "mark"; break;
    default: return 0;  // torn or unwritten slot
  }
  Buf b{out, out + cap};
  b.lit("{\"ev\":\"");
  b.lit(ev);
  b.lit("\",\"seq\":");
  b.u64(seq);
  b.lit(",\"t\":");
  b.u64(r.t_ns >= t0 ? r.t_ns - t0 : 0);
  b.lit(",\"w\":");
  b.u64(r.w);
  if (r.chk >= 0) b.key_i64("chk", r.chk);
  if (r.dec >= 0) b.key_i64("dec", r.dec);
  const std::size_t nl = name_len(r);
  switch (kind) {
    case Kind::kCheckBegin:
      b.key_str("output", r.name, nl);
      b.key_i64("delta", r.a);
      break;
    case Kind::kCheckEnd:
      b.key_str("output", r.name, nl);
      b.key("conclusion");
      b.jstr(conclusion_str(r.aux), std::strlen(conclusion_str(r.aux)));
      b.key_seconds("seconds", r.a);
      break;
    case Kind::kStageBegin:
      b.key_str("stage", r.name, nl);
      break;
    case Kind::kStageEnd: {
      b.key_str("stage", r.name, nl);
      const char* st = stage_status_str(r.aux);
      b.key_str("status", st, std::strlen(st));
      break;
    }
    case Kind::kDecision:
      b.key_i64("parent", r.a);
      b.key_str("net", r.name, nl);
      b.key_bool("cls", r.aux != 0);
      b.key_i64("depth", r.b);
      break;
    case Kind::kDecisionClose: {
      const char* oc = outcome_str(r.aux);
      b.key_str("outcome", oc, std::strlen(oc));
      break;
    }
    case Kind::kBacktrack:
      b.key_str("net", r.name, nl);
      b.key_bool("cls", r.aux != 0);
      b.key_i64("depth", r.b);
      break;
    case Kind::kConflict:
    case Kind::kSpurious:
      b.key_i64("depth", r.b);
      break;
    case Kind::kPropagate:
      b.key_i64("applications", r.a);
      b.key_i64("revisions", r.b);
      b.key_str("status", r.aux != 0 ? "P" : "N", 1);
      break;
    case Kind::kCache: {
      const char* ck = cache_kind_str(r.aux);
      b.key_str("kind", ck, std::strlen(ck));
      break;
    }
    case Kind::kGitdRound:
      b.key_i64("narrowed", r.a);
      break;
    case Kind::kStem:
      b.key_str("net", r.name, nl);
      break;
    case Kind::kServeRequest:
      b.key_str("op", r.name, nl);
      b.key_i64("queue", r.a);
      break;
    case Kind::kServeResponse:
      b.key_str("op", r.name, nl);
      b.key_i64("bytes", r.a);
      b.key_bool("ok", r.aux != 0);
      break;
    case Kind::kServeBatch:
      b.key_str("circuit", r.name, nl);
      b.key_i64("size", r.a);
      b.key_i64("unique", r.b);
      break;
    case Kind::kMark:
      b.key_str("name", r.name, nl);
      break;
    default:
      break;
  }
  b.lit("}\n");
  return static_cast<std::size_t>(b.p - out);
}

std::size_t format_header(std::string_view reason, std::uint64_t rings,
                          std::uint64_t records, std::uint64_t dropped,
                          char* out, std::size_t cap) {
  Buf b{out, out + cap};
  b.lit("{\"ev\":\"fr_dump\",\"seq\":1,\"t\":0,\"w\":0");
  b.key_str("reason", reason.data(), std::min(reason.size(), std::size_t{64}));
  b.key_i64("rings", static_cast<std::int64_t>(rings));
  b.key_i64("records", static_cast<std::int64_t>(records));
  b.key_i64("dropped", static_cast<std::int64_t>(dropped));
  b.lit("}\n");
  return static_cast<std::size_t>(b.p - out);
}

bool valid_kind(std::uint8_t k) {
  return k > 0 && k <= static_cast<std::uint8_t>(Kind::kMaxKind);
}

}  // namespace

// ---------------------------------------------------------------------------
// Sanitizing merged dump (normal path).
// ---------------------------------------------------------------------------

void dump(std::ostream& os, std::string_view reason) {
  // Snapshot every ring. Recording stays live (a serve daemon dumps while
  // still fielding traffic), so after copying we re-read the head and
  // discard the prefix that may have been overwritten mid-copy.
  std::vector<Record> recs;
  std::uint64_t torn = 0;
  const int nrings = detail::g_ring_count.load(std::memory_order_acquire);
  for (int i = 0; i < nrings; ++i) {
    Ring* ring = detail::g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t h = ring->head();
    const std::uint64_t lo = h > Ring::kCapacity ? h - Ring::kCapacity : 0;
    const std::size_t base = recs.size();
    for (std::uint64_t u = lo; u < h; ++u) recs.push_back(ring->slot(u));
    const std::uint64_t h2 = ring->head();
    const std::uint64_t lo2 = h2 > Ring::kCapacity ? h2 - Ring::kCapacity : 0;
    if (lo2 > lo) {
      const std::uint64_t overwritten = std::min(lo2 - lo, h - lo);
      recs.erase(recs.begin() + static_cast<std::ptrdiff_t>(base),
                 recs.begin() + static_cast<std::ptrdiff_t>(base + overwritten));
      torn += overwritten;
    }
  }
  recs.erase(std::remove_if(recs.begin(), recs.end(),
                            [](const Record& r) { return !valid_kind(r.kind); }),
             recs.end());
  std::stable_sort(recs.begin(), recs.end(),
                   [](const Record& x, const Record& y) {
                     return x.t_ns < y.t_ns;
                   });

  // Pass 1: checks whose begin survived. Ring eviction is strictly oldest-
  // first and a check runs on one thread, so "begin survived" implies every
  // later record of that check survived too; anything else is an orphan the
  // analyzer would warn about, and is dropped instead.
  std::unordered_set<std::int64_t> begun;
  for (const Record& r : recs) {
    if (static_cast<Kind>(r.kind) == Kind::kCheckBegin && r.chk >= 0) {
      begun.insert(r.chk);
    }
  }

  struct CheckState {
    bool open = false;
    std::string output;
    std::vector<std::string> stages;         // open stages, outermost first
    std::vector<std::int64_t> dec_stack;     // open decisions, outermost first
    std::unordered_set<std::int64_t> defined;
    std::unordered_set<std::int64_t> closed;
  };
  std::map<std::int64_t, CheckState> state;
  std::vector<std::int64_t> open_order;

  const std::uint64_t t0 = recs.empty() ? 0 : recs.front().t_ns;
  std::uint64_t t_last = 0;
  std::uint64_t seq = 1;
  std::uint64_t dropped = torn;
  char line[kLineCap];

  // Header first; its drop count is patched conceptually by the docs — the
  // exact number of sanitized records is emitted in a trailing mark instead.
  os.write(line, static_cast<std::streamsize>(format_header(
                     reason, static_cast<std::uint64_t>(nrings),
                     static_cast<std::uint64_t>(recs.size()), torn, line,
                     kLineCap)));

  const auto write_rec = [&](const Record& r) {
    const std::size_t n = format_record(r, ++seq, t0, line, kLineCap);
    if (n > 0) os.write(line, static_cast<std::streamsize>(n));
  };

  for (const Record& r : recs) {
    const auto kind = static_cast<Kind>(r.kind);
    if (r.chk >= 0 && !begun.contains(r.chk)) {
      ++dropped;
      continue;
    }
    if (r.chk >= 0) {
      CheckState& cs = state[r.chk];
      switch (kind) {
        case Kind::kCheckBegin:
          if (cs.open) {  // duplicate begin: impossible, but never emit one
            ++dropped;
            continue;
          }
          cs.open = true;
          cs.output.assign(r.name, name_len(r));
          open_order.push_back(r.chk);
          break;
        case Kind::kCheckEnd:
          cs.open = false;
          break;
        case Kind::kStageBegin:
          cs.stages.emplace_back(r.name, name_len(r));
          break;
        case Kind::kStageEnd: {
          const std::string_view sn(r.name, name_len(r));
          for (auto it = cs.stages.rbegin(); it != cs.stages.rend(); ++it) {
            if (*it == sn) {
              cs.stages.erase(std::next(it).base());
              break;
            }
          }
          break;
        }
        case Kind::kDecision:
          cs.defined.insert(r.dec);
          cs.dec_stack.push_back(r.dec);
          break;
        case Kind::kDecisionClose:
          if (!cs.defined.contains(r.dec) || !cs.closed.insert(r.dec).second) {
            ++dropped;
            continue;
          }
          std::erase(cs.dec_stack, r.dec);
          break;
        case Kind::kBacktrack:
          if (!cs.defined.contains(r.dec)) {
            ++dropped;
            continue;
          }
          break;
        default:
          break;
      }
    }
    // Work records stamped with a decision the dump no longer defines are
    // re-attributed to the search root rather than dropped.
    Record out = r;
    if (out.chk >= 0 && out.dec >= 0 && kind != Kind::kDecision &&
        kind != Kind::kDecisionClose && kind != Kind::kBacktrack &&
        !state[out.chk].defined.contains(out.dec)) {
      out.dec = -1;
    }
    t_last = std::max(t_last, r.t_ns >= t0 ? r.t_ns - t0 : 0);
    write_rec(out);
  }

  // Synthetic closes: anything still open at dump time gets an explicit
  // truncation marker so analyze_trace() sees a fully bracketed trace.
  for (const std::int64_t chk : open_order) {
    CheckState& cs = state[chk];
    if (!cs.open) continue;
    Record r{};
    r.t_ns = t0 + (++t_last);
    r.chk = chk;
    r.dec = -1;
    for (auto it = cs.dec_stack.rbegin(); it != cs.dec_stack.rend(); ++it) {
      if (cs.closed.contains(*it)) continue;
      r.kind = static_cast<std::uint8_t>(Kind::kDecisionClose);
      r.dec = *it;
      r.aux = kOutcomeTruncated;
      write_rec(r);
      r.t_ns = t0 + (++t_last);
    }
    r.dec = -1;
    for (auto it = cs.stages.rbegin(); it != cs.stages.rend(); ++it) {
      r.kind = static_cast<std::uint8_t>(Kind::kStageEnd);
      r.aux = kStageNotRun;
      const std::size_t n = std::min(it->size(), kNameCap);
      std::memset(r.name, 0, kNameCap);
      std::memcpy(r.name, it->data(), n);
      write_rec(r);
      r.t_ns = t0 + (++t_last);
    }
    r.kind = static_cast<std::uint8_t>(Kind::kCheckEnd);
    r.aux = kConclusionA;  // abandoned: the dump interrupted it
    r.a = 0;
    std::memset(r.name, 0, kNameCap);
    std::memcpy(r.name, cs.output.data(), std::min(cs.output.size(), kNameCap));
    write_rec(r);
  }

  if (dropped > torn) {
    Record r{};
    r.t_ns = t0 + (++t_last);
    r.chk = -1;
    r.dec = -1;
    r.kind = static_cast<std::uint8_t>(Kind::kMark);
    std::snprintf(r.name, kNameCap, "sanitized:%llu",
                  static_cast<unsigned long long>(dropped - torn));
    write_rec(r);
  }
  os.flush();
}

// ---------------------------------------------------------------------------
// Async-signal-safe dump (fatal-signal path).
// ---------------------------------------------------------------------------

namespace {
void write_all(int fd, const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}
}  // namespace

void dump_signal_safe(int fd, const char* reason) {
  // Stop the writers first so cursors are stable; relaxed is enough — a
  // racing in-flight push at worst tears one slot, which valid_kind and the
  // per-ring head bounds below tolerate.
  detail::g_enabled.store(false, std::memory_order_relaxed);

  const int nrings = detail::g_ring_count.load(std::memory_order_acquire);
  constexpr int kMax = 64;
  std::uint64_t cur[kMax];
  std::uint64_t end[kMax];
  Ring* rings[kMax];
  std::uint64_t total = 0;
  int n = 0;
  for (int i = 0; i < nrings && i < kMax; ++i) {
    Ring* r = detail::g_rings[i].load(std::memory_order_acquire);
    if (r == nullptr) continue;
    const std::uint64_t h = r->head();
    rings[n] = r;
    cur[n] = h > Ring::kCapacity ? h - Ring::kCapacity : 0;
    end[n] = h;
    total += end[n] - cur[n];
    ++n;
  }
  std::uint64_t t0 = UINT64_MAX;
  for (int i = 0; i < n; ++i) {
    if (cur[i] < end[i]) t0 = std::min(t0, rings[i]->slot(cur[i]).t_ns);
  }
  if (t0 == UINT64_MAX) t0 = 0;

  char line[kLineCap];
  write_all(fd, line,
            format_header(reason, static_cast<std::uint64_t>(n), total, 0,
                          line, kLineCap));
  std::uint64_t seq = 1;
  for (;;) {
    int best = -1;
    std::uint64_t best_t = UINT64_MAX;
    for (int i = 0; i < n; ++i) {
      if (cur[i] >= end[i]) continue;
      const std::uint64_t t = rings[i]->slot(cur[i]).t_ns;
      if (t < best_t) {
        best_t = t;
        best = i;
      }
    }
    if (best < 0) break;
    const Record& r = rings[best]->slot(cur[best]++);
    if (!valid_kind(r.kind)) continue;
    const std::size_t len = format_record(r, ++seq, t0, line, kLineCap);
    if (len > 0) write_all(fd, line, len);
  }
}

// ---------------------------------------------------------------------------
// Blackbox directory, rate limiting, fatal handlers.
// ---------------------------------------------------------------------------

namespace {
std::mutex g_bb_mu;
std::string g_bb_dir;
// Precomputed so the signal handler opens a ready-made path (snprintf is
// not on the async-signal-safe list).
char g_fatal_path[512] = {0};

struct ReasonGate {
  std::string reason;
  std::uint64_t last_ns = 0;
  std::uint64_t count = 0;
};
std::vector<ReasonGate>& gates() {
  static std::vector<ReasonGate> g;
  return g;
}

void fatal_handler(int sig) {
  if (g_fatal_path[0] != '\0') {
    const int fd =
        ::open(g_fatal_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      dump_signal_safe(fd, "fatal_signal");
      ::close(fd);
    }
  }
  // SA_RESETHAND restored the default disposition; re-raise to die with
  // the original signal (keeps exit codes and core dumps honest).
  ::raise(sig);
}
}  // namespace

void set_blackbox_dir(std::string dir) {
  std::lock_guard<std::mutex> lock(g_bb_mu);
  g_bb_dir = std::move(dir);
  if (g_bb_dir.empty()) {
    g_fatal_path[0] = '\0';
  } else {
    std::snprintf(g_fatal_path, sizeof(g_fatal_path),
                  "%s/flight-fatal-%ld.jsonl", g_bb_dir.c_str(),
                  static_cast<long>(::getpid()));
  }
}

std::string blackbox_dir() {
  std::lock_guard<std::mutex> lock(g_bb_mu);
  return g_bb_dir;
}

bool blackbox_enabled() {
  std::lock_guard<std::mutex> lock(g_bb_mu);
  return !g_bb_dir.empty();
}

std::string dump_blackbox(const char* reason, std::uint64_t cooldown_ns) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(g_bb_mu);
    if (g_bb_dir.empty()) return "";
    const std::uint64_t now = detail::now_ns();
    ReasonGate* gate = nullptr;
    for (ReasonGate& g : gates()) {
      if (g.reason == reason) {
        gate = &g;
        break;
      }
    }
    if (gate == nullptr) {
      gates().push_back(ReasonGate{reason, 0, 0});
      gate = &gates().back();
    }
    if (cooldown_ns != 0 && gate->last_ns != 0 &&
        now - gate->last_ns < cooldown_ns) {
      return "";
    }
    gate->last_ns = now;
    path = g_bb_dir + "/flight-" + reason + "-" +
           std::to_string(::getpid()) + "-" + std::to_string(++gate->count) +
           ".jsonl";
  }
  std::ofstream f(path, std::ios::trunc);
  if (!f) return "";
  dump(f, reason);
  return path;
}

void install_fatal_handlers() {
  struct sigaction sa{};
  sa.sa_handler = &fatal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    ::sigaction(sig, &sa, nullptr);
  }
}

}  // namespace waveck::flight
