// Engine-wide telemetry: a process-global metrics registry (monotonic
// counters, gauges, scoped ns-resolution stage timers, small fixed-bucket
// histograms) plus a pluggable TraceSink streaming structured JSONL events.
//
// Design constraints (see doc/OBSERVABILITY.md):
//  * Near-zero cost when no trace sink is installed: every emission site
//    guards on `trace_enabled()` (a single pointer load + branch) before
//    constructing any event field, so the disabled path neither allocates
//    nor formats.
//  * Metric updates are relaxed atomic integer arithmetic on storage cached
//    by the hot objects (ConstraintSystem caches references at
//    construction); registry map lookups happen once per object/stage,
//    never per event, and are serialized by a registry mutex.
//  * Concurrency (doc/PARALLELISM.md): every metric object tolerates
//    concurrent increment from any number of threads. For *attributable*
//    tallies (the per-check snapshot deltas in CheckReport) a worker thread
//    installs its own Registry via ScopedRegistry; hot paths resolve
//    metrics through Registry::current(), and the scheduler merges worker
//    registries into the global one with Registry::merge_from() at the end
//    of a batch. Trace events carry the thread's worker id (`"w"` field);
//    JsonlTraceSink serializes whole lines under a mutex so concurrent
//    emissions never interleave.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>

namespace waveck::telemetry {

/// Monotonically increasing event count. Safe under concurrent increment
/// (relaxed atomics: totals are exact, cross-metric ordering is not).
class Counter {
 public:
  void inc() { v_.fetch_add(1, std::memory_order_relaxed); }
  void add(std::uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// A value that can move both ways (queue depth, search depth, ...). Also
/// tracks its high-water mark: the largest value ever observed by set()/add()
/// since construction (or reset()), maintained with a relaxed CAS-max so a
/// gauge that snapshots back to 0 between reports still carries its peak.
class Gauge {
 public:
  void set(std::int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    raise_high_water(v);
  }
  void add(std::int64_t d) {
    raise_high_water(v_.fetch_add(d, std::memory_order_relaxed) + d);
  }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t high_water() const {
    return hw_.load(std::memory_order_relaxed);
  }
  /// Folds an externally observed peak in (Registry::merge_from takes the
  /// max over worker peaks). Never lowers the mark.
  void raise_high_water(std::int64_t v) {
    std::int64_t cur = hw_.load(std::memory_order_relaxed);
    while (v > cur &&
           !hw_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void reset() {
    v_.store(0, std::memory_order_relaxed);
    hw_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> hw_{0};
};

/// Fixed-bucket power-of-two histogram for small non-negative magnitudes
/// (narrowing-delta sizes, queue depths, conflict depths). Bucket 0 holds
/// exact zeros; bucket i (1 <= i <= kBuckets-2) holds [2^(i-1), 2^i); the
/// last bucket overflows. No allocation, O(1) observe. Concurrent observes
/// keep count/sum/bucket totals exact; a racing snapshot may be torn
/// across the three (each is individually consistent).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 18;

  void observe(std::uint64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive lower bound of bucket `i` (0, 1, 2, 4, 8, ...).
  [[nodiscard]] static constexpr std::uint64_t bucket_lower_bound(
      std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  [[nodiscard]] static constexpr std::size_t bucket_index(std::uint64_t v) {
    if (v == 0) return 0;
    const auto w = static_cast<std::size_t>(std::bit_width(v));
    return w < kBuckets - 1 ? w : kBuckets - 1;
  }
  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// pow2 bucket the rank falls in: exact for bucket 0 (zeros), otherwise
  /// accurate to within the bucket width. Returns 0 on an empty histogram.
  /// Snapshots the buckets once, so a racing observe may shift the estimate
  /// by at most its own weight.
  [[nodiscard]] double quantile(double q) const;
  void merge_from(const Histogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      buckets_[i].fetch_add(other.bucket(i), std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  }
  /// Folds pre-aggregated totals in (the LocalHistogram flush path).
  void add_counts(std::span<const std::uint64_t> bucket_counts,
                  std::uint64_t count, std::uint64_t sum) {
    for (std::size_t i = 0; i < kBuckets && i < bucket_counts.size(); ++i) {
      if (bucket_counts[i] != 0) {
        buckets_[i].fetch_add(bucket_counts[i], std::memory_order_relaxed);
      }
    }
    count_.fetch_add(count, std::memory_order_relaxed);
    sum_.fetch_add(sum, std::memory_order_relaxed);
  }
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Explicit-boundary time histogram for µs-scale request latencies. The
/// pow2 Histogram is the right shape for magnitudes spanning many orders,
/// but its buckets double — useless for telling a 60 µs queue wait from a
/// 100 µs one. This one uses a fixed SLO-style boundary ladder (50 µs ..
/// 10 s) chosen to match Prometheus scrape conventions: bucket i counts
/// observations v <= kBoundsUs[i] (cumulatively rendered as `le` buckets in
/// the exposition), the last bucket overflows. Same concurrency contract as
/// Histogram: relaxed atomics, exact totals, torn snapshots possible.
class TimeHistogram {
 public:
  static constexpr std::array<std::uint64_t, 16> kBoundsUs = {
      50,      100,     250,     500,       1'000,     2'500,
      5'000,   10'000,  25'000,  50'000,    100'000,   250'000,
      500'000, 1'000'000, 2'500'000, 10'000'000};
  static constexpr std::size_t kBuckets = kBoundsUs.size() + 1;

  [[nodiscard]] static constexpr std::size_t bucket_index(std::uint64_t us) {
    for (std::size_t i = 0; i < kBoundsUs.size(); ++i) {
      if (us <= kBoundsUs[i]) return i;
    }
    return kBuckets - 1;
  }

  void observe_us(std::uint64_t us) {
    buckets_[bucket_index(us)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
  }
  void observe_ns(std::uint64_t ns) { observe_us(ns / 1000); }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum_us() const {
    return sum_us_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Estimated q-quantile in µs by linear interpolation inside the bucket
  /// the rank lands in (the overflow bucket reports its lower bound).
  [[nodiscard]] double quantile_us(double q) const;
  void merge_from(const TimeHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      buckets_[i].fetch_add(other.bucket(i), std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_us_.fetch_add(other.sum_us(), std::memory_order_relaxed);
  }
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_us_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
};

/// Single-owner accumulation buffer in front of a shared Histogram: each
/// observe() is plain (non-atomic) integer arithmetic, and flush() folds
/// the totals into the histogram with one batch of relaxed RMWs. Loops
/// that observe per event at very high rates (the per-pop queue-depth and
/// per-revision magnitude observations in ConstraintSystem) buffer through
/// this so the hot path never touches shared cache lines. Not thread-safe;
/// flushed on destruction.
class LocalHistogram {
 public:
  explicit LocalHistogram(Histogram& h) : h_(&h) {}
  LocalHistogram(const LocalHistogram&) = delete;
  LocalHistogram& operator=(const LocalHistogram&) = delete;
  /// Movable so owning objects stay movable; the source is left empty.
  LocalHistogram(LocalHistogram&& o) noexcept
      : h_(o.h_), buckets_(o.buckets_), count_(o.count_), sum_(o.sum_) {
    o.buckets_ = {};
    o.count_ = 0;
    o.sum_ = 0;
  }
  ~LocalHistogram() { flush(); }

  void observe(std::uint64_t v) {
    ++buckets_[Histogram::bucket_index(v)];
    ++count_;
    sum_ += v;
  }
  void flush() {
    if (count_ == 0) return;
    h_->add_counts(buckets_, count_, sum_);
    buckets_ = {};
    count_ = 0;
    sum_ = 0;
  }
  [[nodiscard]] std::uint64_t pending() const { return count_; }

 private:
  Histogram* h_;
  std::array<std::uint64_t, Histogram::kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

/// Accumulating stage timer: number of runs and total wall time in ns.
class StageTimer {
 public:
  void add_ns(std::uint64_t ns) { add(1, ns); }
  void add(std::uint64_t calls, std::uint64_t ns) {
    calls_.fetch_add(calls, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t calls() const {
    return calls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double seconds() const {
    return static_cast<double>(total_ns()) * 1e-9;
  }
  void reset() {
    calls_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> total_ns_{0};
};

/// Steady-clock stopwatch with ns resolution.
class StopWatch {
 public:
  StopWatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] std::uint64_t ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  [[nodiscard]] double seconds() const {
    return static_cast<double>(ns()) * 1e-9;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// RAII: adds the scope's wall time to a StageTimer on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(StageTimer& t) : timer_(t) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { timer_.add_ns(watch_.ns()); }

 private:
  StageTimer& timer_;
  StopWatch watch_;
};

/// Metrics registry. Metric objects are created on first use and live as
/// long as the registry; returned references stay valid (node-based
/// storage). Names are dotted paths ("engine.narrowings", "stage.gitd").
///
/// The process-global registry is `global()`. A thread may interpose its
/// own instance with ScopedRegistry, after which `current()` — the lookup
/// the engine's hot objects use — resolves to that instance on that thread
/// only; the owner later folds it back with `merge_from`. Lookups are
/// guarded by a per-registry mutex; value updates are lock-free.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] static Registry& global();
  /// The calling thread's registry: its ScopedRegistry override if one is
  /// installed, the process-global registry otherwise.
  [[nodiscard]] static Registry& current();

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);
  [[nodiscard]] TimeHistogram& time_histogram(std::string_view name);
  [[nodiscard]] StageTimer& timer(std::string_view name);

  /// Adds every metric value of `other` into this registry (gauges add;
  /// histograms merge bucket-wise). `other` should be quiescent.
  void merge_from(const Registry& other);

  /// Deterministic (name-sorted) JSON snapshot of every metric.
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition (version 0.0.4) of every metric, names
  /// mangled to `<prefix>_<dotted_path_with_underscores>`: counters become
  /// `_total` counters, timers a `_seconds_total`/`_calls_total` pair,
  /// gauges a gauge plus `_max`, and both histogram flavors full Prometheus
  /// histograms with cumulative `le` buckets (µs values for TimeHistogram).
  [[nodiscard]] std::string to_prometheus(std::string_view prefix) const;

  /// Zeroes every metric value; registrations (and references) survive.
  void reset();

 private:
  friend class ScopedRegistry;
  static Registry* exchange_thread_registry(Registry* r);

  template <class M>
  using Table = std::map<std::string, M, std::less<>>;

  mutable std::mutex mu_;  // guards table structure, not metric values
  Table<Counter> counters_;
  Table<Gauge> gauges_;
  Table<Histogram> histograms_;
  Table<TimeHistogram> time_histograms_;
  Table<StageTimer> timers_;
};

/// RAII: makes `r` the calling thread's Registry::current() for the scope.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry& r)
      : prev_(Registry::exchange_thread_registry(&r)) {}
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;
  ~ScopedRegistry() { Registry::exchange_thread_registry(prev_); }

 private:
  Registry* prev_;
};

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

/// One key/value pair of a trace event. Cheap to build by value at the call
/// site; string payloads are borrowed (must outlive the `event` call only).
struct TraceField {
  enum class Kind : std::uint8_t { kInt, kDouble, kBool, kString };

  const char* key;
  Kind kind;
  std::int64_t i = 0;
  double d = 0.0;
  bool b = false;
  std::string_view s;

  template <class T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  constexpr TraceField(const char* k, T v)
      : key(k), kind(Kind::kInt), i(static_cast<std::int64_t>(v)) {}
  constexpr TraceField(const char* k, double v)
      : key(k), kind(Kind::kDouble), d(v) {}
  constexpr TraceField(const char* k, bool v)
      : key(k), kind(Kind::kBool), b(v) {}
  constexpr TraceField(const char* k, std::string_view v)
      : key(k), kind(Kind::kString), s(v) {}
  constexpr TraceField(const char* k, const char* v)
      : key(k), kind(Kind::kString), s(v) {}
};

/// Receives structured events. Implementations must tolerate any event name
/// and field set (the schema is producer-defined; see doc/OBSERVABILITY.md)
/// and, when the scheduler runs checks in parallel, concurrent calls from
/// multiple threads (JsonlTraceSink serializes internally).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void event(std::string_view name,
                     std::span<const TraceField> fields) = 0;
};

namespace detail {
extern std::atomic<TraceSink*> g_trace_sink;
}  // namespace detail

[[nodiscard]] inline TraceSink* trace_sink() {
  return detail::g_trace_sink.load(std::memory_order_acquire);
}
[[nodiscard]] inline bool trace_enabled() { return trace_sink() != nullptr; }
/// Installs (or, with nullptr, removes) the process trace sink. Not owned.
/// Install/remove while worker threads may emit is the caller's hazard.
void set_trace_sink(TraceSink* sink);

/// The calling thread's worker id, stamped into every JSONL trace line as
/// the "w" field: 0 on the main thread, 1..N on scheduler pool workers.
[[nodiscard]] int worker_id();
void set_worker_id(int id);

/// Position marks for the sampling profiler (src/prof): the verifier stamps
/// the current check's output name and pipeline stage into thread-local
/// slots, and the SIGPROF handler reads them back to annotate each captured
/// stack. Stored as lock-free atomics so the read is async-signal-safe; the
/// pointed-to strings must outlive the mark (stage names are literals, the
/// check mark borrows the Circuit's net name). nullptr = no mark.
[[nodiscard]] const char* stage_mark();
void set_stage_mark(const char* stage);
[[nodiscard]] const char* check_mark();
void set_check_mark(const char* check);

/// The calling thread's open trace span. `chk` is the id of the enclosing
/// timing check (-1 outside any check), `dec` the id of the FAN decision
/// subtree the engine is currently working under (-1 at the search root).
/// JsonlTraceSink stamps both into every line when set, which is how deep
/// events (`propagate`, `conflict`, `cache`) get attributed to a check and
/// decision without threading ids through the hot call sites.
struct SpanContext {
  std::int64_t chk = -1;
  std::int64_t dec = -1;
};
[[nodiscard]] SpanContext& span_context();

/// RAII for the check-level span: allocates a process-unique 1-based check
/// id, installs it as the thread's span context (with `dec` cleared), and
/// restores the previous context on destruction.
class ScopedCheckSpan {
 public:
  ScopedCheckSpan();
  ScopedCheckSpan(const ScopedCheckSpan&) = delete;
  ScopedCheckSpan& operator=(const ScopedCheckSpan&) = delete;
  ~ScopedCheckSpan();

  [[nodiscard]] std::int64_t id() const { return id_; }

 private:
  std::int64_t id_;
  SpanContext prev_;
};

/// Emits an event iff a sink is installed. Call sites that compute field
/// values (names, deltas) should guard on `trace_enabled()` themselves so
/// the disabled path pays only the branch.
inline void emit(std::string_view name,
                 std::initializer_list<TraceField> fields) {
  if (TraceSink* sink = trace_sink()) {
    sink->event(name, {fields.begin(), fields.size()});
  }
}

/// Streams events as JSON Lines: one object per event, first keys always
/// "ev" (event name), "seq" (1-based sequence number), "t" (ns since the
/// sink was created) and "w" (emitting worker id), then — when the emitting
/// thread has an open span — "chk" (check id) and "dec" (decision id), then
/// the producer fields in order. Lines are formatted into a local buffer
/// and written under a mutex, so events from concurrent workers never
/// interleave mid-line.
class JsonlTraceSink final : public TraceSink {
 public:
  /// Borrows `os`; the stream must outlive the sink.
  explicit JsonlTraceSink(std::ostream& os);
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit JsonlTraceSink(const std::string& path);

  void event(std::string_view name,
             std::span<const TraceField> fields) override;

  [[nodiscard]] std::uint64_t events_written() const {
    return seq_.load(std::memory_order_relaxed);
  }

 private:
  std::ofstream file_;
  std::ostream* os_;
  std::mutex mu_;
  std::atomic<std::uint64_t> seq_{0};
  std::chrono::steady_clock::time_point start_;
};

/// JSON string-body escaping (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace waveck::telemetry
