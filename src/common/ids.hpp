// Strong index types for nets and gates.
//
// Circuits are stored as index-addressed vectors; strong IDs keep net and
// gate indices from being mixed up at compile time.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace waveck {

template <class Tag>
class Id {
 public:
  using underlying = std::uint32_t;
  static constexpr underlying kInvalid = std::numeric_limits<underlying>::max();

  constexpr Id() = default;
  constexpr explicit Id(underlying v) : v_(v) {}
  constexpr explicit Id(std::size_t v) : v_(static_cast<underlying>(v)) {}

  [[nodiscard]] constexpr underlying value() const { return v_; }
  [[nodiscard]] constexpr std::size_t index() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ != kInvalid; }

  friend constexpr auto operator<=>(Id a, Id b) = default;

 private:
  underlying v_ = kInvalid;
};

struct NetTag {};
struct GateTag {};

using NetId = Id<NetTag>;
using GateId = Id<GateTag>;

}  // namespace waveck

template <class Tag>
struct std::hash<waveck::Id<Tag>> {
  std::size_t operator()(waveck::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
