// Flat bit plane: one bit per index, 64 per word.
//
// The data-oriented constraint core keeps its per-net / per-gate flags
// (in-queue, changed-since-drain, carrier marks) as bit planes instead of
// byte vectors: an ISCAS-sized circuit's whole flag plane fits in a few
// cache lines, and the level-sweep kernels walk set bits a word at a time
// (`for_each_set_in_range`) instead of testing gates one by one.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace waveck {

class BitPlane {
 public:
  BitPlane() = default;
  explicit BitPlane(std::size_t n) { assign(n); }

  /// Resizes to `n` bits, all clear.
  void assign(std::size_t n) {
    size_ = n;
    words_.assign((n + 63) / 64, 0);
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] bool test(std::size_t i) const {
    assert(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i) {
    assert(i < size_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  void reset(std::size_t i) {
    assert(i < size_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  /// Sets bit `i`; returns its previous value (one read-modify-write for
  /// the "schedule if not already queued" pattern).
  bool test_set(std::size_t i) {
    assert(i < size_);
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t m = std::uint64_t{1} << (i & 63);
    const bool was = (w & m) != 0;
    w |= m;
    return was;
  }

  /// Clears every bit in [lo, hi).
  void clear_range(std::size_t lo, std::size_t hi) {
    assert(lo <= hi && hi <= size_);
    if (lo >= hi) return;
    const std::size_t wl = lo >> 6;
    const std::size_t wh = (hi - 1) >> 6;
    const std::uint64_t head = ~std::uint64_t{0} << (lo & 63);
    const std::uint64_t tail = ~std::uint64_t{0} >> (63 - ((hi - 1) & 63));
    if (wl == wh) {
      words_[wl] &= ~(head & tail);
      return;
    }
    words_[wl] &= ~head;
    for (std::size_t w = wl + 1; w < wh; ++w) words_[w] = 0;
    words_[wh] &= ~tail;
  }

  /// Calls `f(i)` for every set bit in [lo, hi), ascending. The callback
  /// must not mutate this plane.
  template <class F>
  void for_each_set_in_range(std::size_t lo, std::size_t hi, F&& f) const {
    assert(lo <= hi && hi <= size_);
    if (lo >= hi) return;
    const std::size_t wl = lo >> 6;
    const std::size_t wh = (hi - 1) >> 6;
    for (std::size_t wi = wl; wi <= wh; ++wi) {
      std::uint64_t w = words_[wi];
      if (wi == wl) w &= ~std::uint64_t{0} << (lo & 63);
      if (wi == wh) w &= ~std::uint64_t{0} >> (63 - ((hi - 1) & 63));
      while (w != 0) {
        const int b = std::countr_zero(w);
        f(wi * 64 + static_cast<std::size_t>(b));
        w &= w - 1;
      }
    }
  }

  /// Bytes held by the word array (arena accounting).
  [[nodiscard]] std::size_t capacity_bytes() const {
    return words_.capacity() * sizeof(std::uint64_t);
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace waveck
