// Error reporting helpers.
#pragma once

#include <stdexcept>
#include <string>

namespace waveck {

/// Thrown on malformed user input (netlist files, delay annotations, ...).
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& file, int line, const std::string& what)
      : std::runtime_error(file + ":" + std::to_string(line) + ": " + what),
        line_(line) {}
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// Thrown on structurally invalid circuits (cycles, undriven internal nets...).
class CircuitError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

}  // namespace waveck
