// Discrete time with +/- infinity sentinels and saturating arithmetic.
//
// The waveform-narrowing domain (Kassab et al., DATE'98) manipulates
// last-transition-time bounds of the form  -inf <= lmin <= max <= +inf.
// Bounds are integers (the paper works in discrete time, Def. 1); we add
// infinities so that the top domain (0|-inf..+inf, 1|-inf..+inf) and the
// "never transitions" value (lmin = -inf) are first-class.
#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace waveck {

/// A point in discrete time, or +/- infinity.
///
/// Arithmetic saturates at the infinities: `t + d` is +inf whenever either
/// operand is +inf, and -inf whenever either is -inf. Adding +inf to -inf is
/// a logic error (asserted); no narrowing rule ever needs it.
class Time {
 public:
  constexpr Time() = default;
  constexpr Time(std::int64_t v) : v_(v) {  // NOLINT(google-explicit-constructor)
    assert(v > kNegInf && v < kPosInf && "finite Time out of range");
  }

  [[nodiscard]] static constexpr Time neg_inf() { return Time(kNegInf, Raw{}); }
  [[nodiscard]] static constexpr Time pos_inf() { return Time(kPosInf, Raw{}); }

  [[nodiscard]] constexpr bool is_neg_inf() const { return v_ == kNegInf; }
  [[nodiscard]] constexpr bool is_pos_inf() const { return v_ == kPosInf; }
  [[nodiscard]] constexpr bool is_finite() const {
    return v_ != kNegInf && v_ != kPosInf;
  }

  /// Finite value accessor; caller must ensure `is_finite()`.
  [[nodiscard]] constexpr std::int64_t value() const {
    assert(is_finite());
    return v_;
  }

  friend constexpr auto operator<=>(Time a, Time b) = default;

  /// Saturating addition of a finite offset (gate delay, -delay, +/-1 ...).
  [[nodiscard]] constexpr Time plus(std::int64_t delta) const {
    if (!is_finite()) return *this;
    return Time(v_ + delta);
  }

  friend constexpr Time operator+(Time a, std::int64_t d) { return a.plus(d); }
  friend constexpr Time operator-(Time a, std::int64_t d) { return a.plus(-d); }

  [[nodiscard]] static constexpr Time min(Time a, Time b) { return a < b ? a : b; }
  [[nodiscard]] static constexpr Time max(Time a, Time b) { return a > b ? a : b; }

  // ----- raw (sentinel-encoded) view ---------------------------------------
  // The SoA domain planes (constraints/soa_domain.hpp) store bounds as bare
  // int64 with the same sentinel encoding this class uses internally, so the
  // batched kernels can do branch-free min/max/saturating-add on plane
  // arrays. `raw()`/`from_raw` convert without re-validating; the sentinel
  // constants are exposed for the kernels' saturation masks.
  static constexpr std::int64_t kRawNegInf = INT64_MIN / 4;
  static constexpr std::int64_t kRawPosInf = INT64_MAX / 4;

  [[nodiscard]] constexpr std::int64_t raw() const { return v_; }
  [[nodiscard]] static constexpr Time from_raw(std::int64_t v) {
    assert(v >= kRawNegInf && v <= kRawPosInf && "raw Time out of range");
    return Time(v, Raw{});
  }

  [[nodiscard]] std::string str() const;

 private:
  struct Raw {};
  constexpr Time(std::int64_t v, Raw) : v_(v) {}

  // Leave headroom so saturating adds of delay sums can never wrap.
  static constexpr std::int64_t kNegInf = kRawNegInf;
  static constexpr std::int64_t kPosInf = kRawPosInf;

  std::int64_t v_ = 0;
};

std::ostream& operator<<(std::ostream& os, Time t);

}  // namespace waveck
