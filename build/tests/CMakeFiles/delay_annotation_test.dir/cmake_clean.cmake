file(REMOVE_RECURSE
  "CMakeFiles/delay_annotation_test.dir/delay_annotation_test.cpp.o"
  "CMakeFiles/delay_annotation_test.dir/delay_annotation_test.cpp.o.d"
  "delay_annotation_test"
  "delay_annotation_test.pdb"
  "delay_annotation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_annotation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
