# Empty dependencies file for delay_annotation_test.
# This may be replaced when dependencies are built.
