# Empty dependencies file for delay_correlation_test.
# This may be replaced when dependencies are built.
