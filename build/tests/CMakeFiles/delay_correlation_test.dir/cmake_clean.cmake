file(REMOVE_RECURSE
  "CMakeFiles/delay_correlation_test.dir/delay_correlation_test.cpp.o"
  "CMakeFiles/delay_correlation_test.dir/delay_correlation_test.cpp.o.d"
  "delay_correlation_test"
  "delay_correlation_test.pdb"
  "delay_correlation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_correlation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
