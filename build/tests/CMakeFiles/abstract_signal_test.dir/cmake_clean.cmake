file(REMOVE_RECURSE
  "CMakeFiles/abstract_signal_test.dir/abstract_signal_test.cpp.o"
  "CMakeFiles/abstract_signal_test.dir/abstract_signal_test.cpp.o.d"
  "abstract_signal_test"
  "abstract_signal_test.pdb"
  "abstract_signal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abstract_signal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
