file(REMOVE_RECURSE
  "CMakeFiles/head_lines_test.dir/head_lines_test.cpp.o"
  "CMakeFiles/head_lines_test.dir/head_lines_test.cpp.o.d"
  "head_lines_test"
  "head_lines_test.pdb"
  "head_lines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/head_lines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
