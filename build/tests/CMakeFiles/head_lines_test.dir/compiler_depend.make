# Empty compiler generated dependencies file for head_lines_test.
# This may be replaced when dependencies are built.
