file(REMOVE_RECURSE
  "CMakeFiles/transition_sim_test.dir/transition_sim_test.cpp.o"
  "CMakeFiles/transition_sim_test.dir/transition_sim_test.cpp.o.d"
  "transition_sim_test"
  "transition_sim_test.pdb"
  "transition_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transition_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
