# Empty dependencies file for transition_sim_test.
# This may be replaced when dependencies are built.
