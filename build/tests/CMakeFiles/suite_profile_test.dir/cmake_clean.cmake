file(REMOVE_RECURSE
  "CMakeFiles/suite_profile_test.dir/suite_profile_test.cpp.o"
  "CMakeFiles/suite_profile_test.dir/suite_profile_test.cpp.o.d"
  "suite_profile_test"
  "suite_profile_test.pdb"
  "suite_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
