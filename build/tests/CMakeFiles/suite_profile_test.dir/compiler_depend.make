# Empty compiler generated dependencies file for suite_profile_test.
# This may be replaced when dependencies are built.
