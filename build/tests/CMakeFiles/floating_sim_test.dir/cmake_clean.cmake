file(REMOVE_RECURSE
  "CMakeFiles/floating_sim_test.dir/floating_sim_test.cpp.o"
  "CMakeFiles/floating_sim_test.dir/floating_sim_test.cpp.o.d"
  "floating_sim_test"
  "floating_sim_test.pdb"
  "floating_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floating_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
