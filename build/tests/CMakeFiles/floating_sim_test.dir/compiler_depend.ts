# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for floating_sim_test.
