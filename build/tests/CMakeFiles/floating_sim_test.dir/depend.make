# Empty dependencies file for floating_sim_test.
# This may be replaced when dependencies are built.
