file(REMOVE_RECURSE
  "CMakeFiles/stem_correlation_test.dir/stem_correlation_test.cpp.o"
  "CMakeFiles/stem_correlation_test.dir/stem_correlation_test.cpp.o.d"
  "stem_correlation_test"
  "stem_correlation_test.pdb"
  "stem_correlation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_correlation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
