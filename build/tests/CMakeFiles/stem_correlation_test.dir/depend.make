# Empty dependencies file for stem_correlation_test.
# This may be replaced when dependencies are built.
