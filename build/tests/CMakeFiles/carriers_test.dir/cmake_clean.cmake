file(REMOVE_RECURSE
  "CMakeFiles/carriers_test.dir/carriers_test.cpp.o"
  "CMakeFiles/carriers_test.dir/carriers_test.cpp.o.d"
  "carriers_test"
  "carriers_test.pdb"
  "carriers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carriers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
