# Empty dependencies file for carriers_test.
# This may be replaced when dependencies are built.
