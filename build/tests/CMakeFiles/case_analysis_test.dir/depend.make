# Empty dependencies file for case_analysis_test.
# This may be replaced when dependencies are built.
