file(REMOVE_RECURSE
  "CMakeFiles/case_analysis_test.dir/case_analysis_test.cpp.o"
  "CMakeFiles/case_analysis_test.dir/case_analysis_test.cpp.o.d"
  "case_analysis_test"
  "case_analysis_test.pdb"
  "case_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
