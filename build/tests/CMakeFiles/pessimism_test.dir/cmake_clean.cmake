file(REMOVE_RECURSE
  "CMakeFiles/pessimism_test.dir/pessimism_test.cpp.o"
  "CMakeFiles/pessimism_test.dir/pessimism_test.cpp.o.d"
  "pessimism_test"
  "pessimism_test.pdb"
  "pessimism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pessimism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
