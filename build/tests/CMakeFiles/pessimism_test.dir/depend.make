# Empty dependencies file for pessimism_test.
# This may be replaced when dependencies are built.
