# Empty dependencies file for falsepath_test.
# This may be replaced when dependencies are built.
