file(REMOVE_RECURSE
  "CMakeFiles/falsepath_test.dir/falsepath_test.cpp.o"
  "CMakeFiles/falsepath_test.dir/falsepath_test.cpp.o.d"
  "falsepath_test"
  "falsepath_test.pdb"
  "falsepath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falsepath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
