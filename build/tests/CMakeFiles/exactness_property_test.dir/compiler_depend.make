# Empty compiler generated dependencies file for exactness_property_test.
# This may be replaced when dependencies are built.
