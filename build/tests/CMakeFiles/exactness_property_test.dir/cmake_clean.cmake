file(REMOVE_RECURSE
  "CMakeFiles/exactness_property_test.dir/exactness_property_test.cpp.o"
  "CMakeFiles/exactness_property_test.dir/exactness_property_test.cpp.o.d"
  "exactness_property_test"
  "exactness_property_test.pdb"
  "exactness_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exactness_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
