file(REMOVE_RECURSE
  "CMakeFiles/constraint_system_test.dir/constraint_system_test.cpp.o"
  "CMakeFiles/constraint_system_test.dir/constraint_system_test.cpp.o.d"
  "constraint_system_test"
  "constraint_system_test.pdb"
  "constraint_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
