file(REMOVE_RECURSE
  "CMakeFiles/topo_delay_test.dir/topo_delay_test.cpp.o"
  "CMakeFiles/topo_delay_test.dir/topo_delay_test.cpp.o.d"
  "topo_delay_test"
  "topo_delay_test.pdb"
  "topo_delay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_delay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
