file(REMOVE_RECURSE
  "CMakeFiles/verilog_io_test.dir/verilog_io_test.cpp.o"
  "CMakeFiles/verilog_io_test.dir/verilog_io_test.cpp.o.d"
  "verilog_io_test"
  "verilog_io_test.pdb"
  "verilog_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verilog_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
