file(REMOVE_RECURSE
  "CMakeFiles/verifier_modes_test.dir/verifier_modes_test.cpp.o"
  "CMakeFiles/verifier_modes_test.dir/verifier_modes_test.cpp.o.d"
  "verifier_modes_test"
  "verifier_modes_test.pdb"
  "verifier_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verifier_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
