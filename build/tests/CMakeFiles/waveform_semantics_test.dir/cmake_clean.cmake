file(REMOVE_RECURSE
  "CMakeFiles/waveform_semantics_test.dir/waveform_semantics_test.cpp.o"
  "CMakeFiles/waveform_semantics_test.dir/waveform_semantics_test.cpp.o.d"
  "waveform_semantics_test"
  "waveform_semantics_test.pdb"
  "waveform_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waveform_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
