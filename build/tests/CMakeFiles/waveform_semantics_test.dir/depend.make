# Empty dependencies file for waveform_semantics_test.
# This may be replaced when dependencies are built.
