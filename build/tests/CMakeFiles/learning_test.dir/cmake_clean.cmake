file(REMOVE_RECURSE
  "CMakeFiles/learning_test.dir/learning_test.cpp.o"
  "CMakeFiles/learning_test.dir/learning_test.cpp.o.d"
  "learning_test"
  "learning_test.pdb"
  "learning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
