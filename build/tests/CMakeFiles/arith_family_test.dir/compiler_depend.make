# Empty compiler generated dependencies file for arith_family_test.
# This may be replaced when dependencies are built.
