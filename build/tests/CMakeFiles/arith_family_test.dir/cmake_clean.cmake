file(REMOVE_RECURSE
  "CMakeFiles/arith_family_test.dir/arith_family_test.cpp.o"
  "CMakeFiles/arith_family_test.dir/arith_family_test.cpp.o.d"
  "arith_family_test"
  "arith_family_test.pdb"
  "arith_family_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arith_family_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
