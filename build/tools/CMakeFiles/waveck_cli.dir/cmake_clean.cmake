file(REMOVE_RECURSE
  "CMakeFiles/waveck_cli.dir/waveck_cli.cpp.o"
  "CMakeFiles/waveck_cli.dir/waveck_cli.cpp.o.d"
  "waveck"
  "waveck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waveck_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
