# Empty compiler generated dependencies file for waveck_cli.
# This may be replaced when dependencies are built.
