file(REMOVE_RECURSE
  "libwaveck_waveform.a"
)
