# Empty compiler generated dependencies file for waveck_waveform.
# This may be replaced when dependencies are built.
