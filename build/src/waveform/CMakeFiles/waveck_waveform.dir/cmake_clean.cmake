file(REMOVE_RECURSE
  "CMakeFiles/waveck_waveform.dir/abstract_waveform.cpp.o"
  "CMakeFiles/waveck_waveform.dir/abstract_waveform.cpp.o.d"
  "libwaveck_waveform.a"
  "libwaveck_waveform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waveck_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
