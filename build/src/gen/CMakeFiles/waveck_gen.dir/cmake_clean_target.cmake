file(REMOVE_RECURSE
  "libwaveck_gen.a"
)
