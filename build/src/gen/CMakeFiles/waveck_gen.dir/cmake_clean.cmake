file(REMOVE_RECURSE
  "CMakeFiles/waveck_gen.dir/adders.cpp.o"
  "CMakeFiles/waveck_gen.dir/adders.cpp.o.d"
  "CMakeFiles/waveck_gen.dir/arith_family.cpp.o"
  "CMakeFiles/waveck_gen.dir/arith_family.cpp.o.d"
  "CMakeFiles/waveck_gen.dir/classic.cpp.o"
  "CMakeFiles/waveck_gen.dir/classic.cpp.o.d"
  "CMakeFiles/waveck_gen.dir/datapath.cpp.o"
  "CMakeFiles/waveck_gen.dir/datapath.cpp.o.d"
  "CMakeFiles/waveck_gen.dir/falsepath.cpp.o"
  "CMakeFiles/waveck_gen.dir/falsepath.cpp.o.d"
  "CMakeFiles/waveck_gen.dir/iscas_suite.cpp.o"
  "CMakeFiles/waveck_gen.dir/iscas_suite.cpp.o.d"
  "libwaveck_gen.a"
  "libwaveck_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waveck_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
