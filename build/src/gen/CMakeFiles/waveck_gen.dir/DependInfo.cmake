
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/adders.cpp" "src/gen/CMakeFiles/waveck_gen.dir/adders.cpp.o" "gcc" "src/gen/CMakeFiles/waveck_gen.dir/adders.cpp.o.d"
  "/root/repo/src/gen/arith_family.cpp" "src/gen/CMakeFiles/waveck_gen.dir/arith_family.cpp.o" "gcc" "src/gen/CMakeFiles/waveck_gen.dir/arith_family.cpp.o.d"
  "/root/repo/src/gen/classic.cpp" "src/gen/CMakeFiles/waveck_gen.dir/classic.cpp.o" "gcc" "src/gen/CMakeFiles/waveck_gen.dir/classic.cpp.o.d"
  "/root/repo/src/gen/datapath.cpp" "src/gen/CMakeFiles/waveck_gen.dir/datapath.cpp.o" "gcc" "src/gen/CMakeFiles/waveck_gen.dir/datapath.cpp.o.d"
  "/root/repo/src/gen/falsepath.cpp" "src/gen/CMakeFiles/waveck_gen.dir/falsepath.cpp.o" "gcc" "src/gen/CMakeFiles/waveck_gen.dir/falsepath.cpp.o.d"
  "/root/repo/src/gen/iscas_suite.cpp" "src/gen/CMakeFiles/waveck_gen.dir/iscas_suite.cpp.o" "gcc" "src/gen/CMakeFiles/waveck_gen.dir/iscas_suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/waveck_common.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/waveck_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
