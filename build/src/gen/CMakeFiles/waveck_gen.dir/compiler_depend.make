# Empty compiler generated dependencies file for waveck_gen.
# This may be replaced when dependencies are built.
