file(REMOVE_RECURSE
  "CMakeFiles/waveck_verify.dir/case_analysis.cpp.o"
  "CMakeFiles/waveck_verify.dir/case_analysis.cpp.o.d"
  "CMakeFiles/waveck_verify.dir/pessimism.cpp.o"
  "CMakeFiles/waveck_verify.dir/pessimism.cpp.o.d"
  "CMakeFiles/waveck_verify.dir/report_io.cpp.o"
  "CMakeFiles/waveck_verify.dir/report_io.cpp.o.d"
  "CMakeFiles/waveck_verify.dir/stem_correlation.cpp.o"
  "CMakeFiles/waveck_verify.dir/stem_correlation.cpp.o.d"
  "CMakeFiles/waveck_verify.dir/verifier.cpp.o"
  "CMakeFiles/waveck_verify.dir/verifier.cpp.o.d"
  "libwaveck_verify.a"
  "libwaveck_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waveck_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
