
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/case_analysis.cpp" "src/verify/CMakeFiles/waveck_verify.dir/case_analysis.cpp.o" "gcc" "src/verify/CMakeFiles/waveck_verify.dir/case_analysis.cpp.o.d"
  "/root/repo/src/verify/pessimism.cpp" "src/verify/CMakeFiles/waveck_verify.dir/pessimism.cpp.o" "gcc" "src/verify/CMakeFiles/waveck_verify.dir/pessimism.cpp.o.d"
  "/root/repo/src/verify/report_io.cpp" "src/verify/CMakeFiles/waveck_verify.dir/report_io.cpp.o" "gcc" "src/verify/CMakeFiles/waveck_verify.dir/report_io.cpp.o.d"
  "/root/repo/src/verify/stem_correlation.cpp" "src/verify/CMakeFiles/waveck_verify.dir/stem_correlation.cpp.o" "gcc" "src/verify/CMakeFiles/waveck_verify.dir/stem_correlation.cpp.o.d"
  "/root/repo/src/verify/verifier.cpp" "src/verify/CMakeFiles/waveck_verify.dir/verifier.cpp.o" "gcc" "src/verify/CMakeFiles/waveck_verify.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/waveck_common.dir/DependInfo.cmake"
  "/root/repo/build/src/waveform/CMakeFiles/waveck_waveform.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/waveck_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/waveck_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/waveck_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/waveck_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
