# Empty compiler generated dependencies file for waveck_verify.
# This may be replaced when dependencies are built.
