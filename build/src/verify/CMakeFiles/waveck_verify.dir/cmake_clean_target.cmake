file(REMOVE_RECURSE
  "libwaveck_verify.a"
)
