file(REMOVE_RECURSE
  "libwaveck_netlist.a"
)
