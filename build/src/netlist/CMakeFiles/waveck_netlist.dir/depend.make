# Empty dependencies file for waveck_netlist.
# This may be replaced when dependencies are built.
