
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/bench_io.cpp" "src/netlist/CMakeFiles/waveck_netlist.dir/bench_io.cpp.o" "gcc" "src/netlist/CMakeFiles/waveck_netlist.dir/bench_io.cpp.o.d"
  "/root/repo/src/netlist/circuit.cpp" "src/netlist/CMakeFiles/waveck_netlist.dir/circuit.cpp.o" "gcc" "src/netlist/CMakeFiles/waveck_netlist.dir/circuit.cpp.o.d"
  "/root/repo/src/netlist/delay_annotation.cpp" "src/netlist/CMakeFiles/waveck_netlist.dir/delay_annotation.cpp.o" "gcc" "src/netlist/CMakeFiles/waveck_netlist.dir/delay_annotation.cpp.o.d"
  "/root/repo/src/netlist/topo_delay.cpp" "src/netlist/CMakeFiles/waveck_netlist.dir/topo_delay.cpp.o" "gcc" "src/netlist/CMakeFiles/waveck_netlist.dir/topo_delay.cpp.o.d"
  "/root/repo/src/netlist/transforms.cpp" "src/netlist/CMakeFiles/waveck_netlist.dir/transforms.cpp.o" "gcc" "src/netlist/CMakeFiles/waveck_netlist.dir/transforms.cpp.o.d"
  "/root/repo/src/netlist/verilog_io.cpp" "src/netlist/CMakeFiles/waveck_netlist.dir/verilog_io.cpp.o" "gcc" "src/netlist/CMakeFiles/waveck_netlist.dir/verilog_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/waveck_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
