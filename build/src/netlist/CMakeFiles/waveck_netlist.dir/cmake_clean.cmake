file(REMOVE_RECURSE
  "CMakeFiles/waveck_netlist.dir/bench_io.cpp.o"
  "CMakeFiles/waveck_netlist.dir/bench_io.cpp.o.d"
  "CMakeFiles/waveck_netlist.dir/circuit.cpp.o"
  "CMakeFiles/waveck_netlist.dir/circuit.cpp.o.d"
  "CMakeFiles/waveck_netlist.dir/delay_annotation.cpp.o"
  "CMakeFiles/waveck_netlist.dir/delay_annotation.cpp.o.d"
  "CMakeFiles/waveck_netlist.dir/topo_delay.cpp.o"
  "CMakeFiles/waveck_netlist.dir/topo_delay.cpp.o.d"
  "CMakeFiles/waveck_netlist.dir/transforms.cpp.o"
  "CMakeFiles/waveck_netlist.dir/transforms.cpp.o.d"
  "CMakeFiles/waveck_netlist.dir/verilog_io.cpp.o"
  "CMakeFiles/waveck_netlist.dir/verilog_io.cpp.o.d"
  "libwaveck_netlist.a"
  "libwaveck_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waveck_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
