# Empty compiler generated dependencies file for waveck_constraints.
# This may be replaced when dependencies are built.
