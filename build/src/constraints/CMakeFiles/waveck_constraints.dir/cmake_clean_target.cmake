file(REMOVE_RECURSE
  "libwaveck_constraints.a"
)
