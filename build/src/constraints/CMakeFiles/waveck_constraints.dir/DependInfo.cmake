
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraints/constraint_system.cpp" "src/constraints/CMakeFiles/waveck_constraints.dir/constraint_system.cpp.o" "gcc" "src/constraints/CMakeFiles/waveck_constraints.dir/constraint_system.cpp.o.d"
  "/root/repo/src/constraints/projection.cpp" "src/constraints/CMakeFiles/waveck_constraints.dir/projection.cpp.o" "gcc" "src/constraints/CMakeFiles/waveck_constraints.dir/projection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/waveck_common.dir/DependInfo.cmake"
  "/root/repo/build/src/waveform/CMakeFiles/waveck_waveform.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/waveck_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
