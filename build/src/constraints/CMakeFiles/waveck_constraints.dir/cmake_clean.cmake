file(REMOVE_RECURSE
  "CMakeFiles/waveck_constraints.dir/constraint_system.cpp.o"
  "CMakeFiles/waveck_constraints.dir/constraint_system.cpp.o.d"
  "CMakeFiles/waveck_constraints.dir/projection.cpp.o"
  "CMakeFiles/waveck_constraints.dir/projection.cpp.o.d"
  "libwaveck_constraints.a"
  "libwaveck_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waveck_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
