# Empty compiler generated dependencies file for waveck_analysis.
# This may be replaced when dependencies are built.
