file(REMOVE_RECURSE
  "libwaveck_analysis.a"
)
