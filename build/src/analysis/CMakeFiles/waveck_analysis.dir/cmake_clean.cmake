file(REMOVE_RECURSE
  "CMakeFiles/waveck_analysis.dir/carriers.cpp.o"
  "CMakeFiles/waveck_analysis.dir/carriers.cpp.o.d"
  "CMakeFiles/waveck_analysis.dir/delay_correlation.cpp.o"
  "CMakeFiles/waveck_analysis.dir/delay_correlation.cpp.o.d"
  "CMakeFiles/waveck_analysis.dir/head_lines.cpp.o"
  "CMakeFiles/waveck_analysis.dir/head_lines.cpp.o.d"
  "CMakeFiles/waveck_analysis.dir/learning.cpp.o"
  "CMakeFiles/waveck_analysis.dir/learning.cpp.o.d"
  "CMakeFiles/waveck_analysis.dir/scoap.cpp.o"
  "CMakeFiles/waveck_analysis.dir/scoap.cpp.o.d"
  "libwaveck_analysis.a"
  "libwaveck_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waveck_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
