
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/carriers.cpp" "src/analysis/CMakeFiles/waveck_analysis.dir/carriers.cpp.o" "gcc" "src/analysis/CMakeFiles/waveck_analysis.dir/carriers.cpp.o.d"
  "/root/repo/src/analysis/delay_correlation.cpp" "src/analysis/CMakeFiles/waveck_analysis.dir/delay_correlation.cpp.o" "gcc" "src/analysis/CMakeFiles/waveck_analysis.dir/delay_correlation.cpp.o.d"
  "/root/repo/src/analysis/head_lines.cpp" "src/analysis/CMakeFiles/waveck_analysis.dir/head_lines.cpp.o" "gcc" "src/analysis/CMakeFiles/waveck_analysis.dir/head_lines.cpp.o.d"
  "/root/repo/src/analysis/learning.cpp" "src/analysis/CMakeFiles/waveck_analysis.dir/learning.cpp.o" "gcc" "src/analysis/CMakeFiles/waveck_analysis.dir/learning.cpp.o.d"
  "/root/repo/src/analysis/scoap.cpp" "src/analysis/CMakeFiles/waveck_analysis.dir/scoap.cpp.o" "gcc" "src/analysis/CMakeFiles/waveck_analysis.dir/scoap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/waveck_common.dir/DependInfo.cmake"
  "/root/repo/build/src/waveform/CMakeFiles/waveck_waveform.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/waveck_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/waveck_constraints.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
