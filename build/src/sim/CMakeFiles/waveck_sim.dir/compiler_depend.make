# Empty compiler generated dependencies file for waveck_sim.
# This may be replaced when dependencies are built.
