file(REMOVE_RECURSE
  "libwaveck_sim.a"
)
