file(REMOVE_RECURSE
  "CMakeFiles/waveck_sim.dir/floating_sim.cpp.o"
  "CMakeFiles/waveck_sim.dir/floating_sim.cpp.o.d"
  "CMakeFiles/waveck_sim.dir/monte_carlo.cpp.o"
  "CMakeFiles/waveck_sim.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/waveck_sim.dir/transition_sim.cpp.o"
  "CMakeFiles/waveck_sim.dir/transition_sim.cpp.o.d"
  "libwaveck_sim.a"
  "libwaveck_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waveck_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
