# Empty compiler generated dependencies file for waveck_sta.
# This may be replaced when dependencies are built.
