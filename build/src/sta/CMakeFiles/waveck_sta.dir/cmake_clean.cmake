file(REMOVE_RECURSE
  "CMakeFiles/waveck_sta.dir/path_enum.cpp.o"
  "CMakeFiles/waveck_sta.dir/path_enum.cpp.o.d"
  "CMakeFiles/waveck_sta.dir/sta.cpp.o"
  "CMakeFiles/waveck_sta.dir/sta.cpp.o.d"
  "libwaveck_sta.a"
  "libwaveck_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waveck_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
