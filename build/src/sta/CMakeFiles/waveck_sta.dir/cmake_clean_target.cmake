file(REMOVE_RECURSE
  "libwaveck_sta.a"
)
