file(REMOVE_RECURSE
  "CMakeFiles/waveck_common.dir/time.cpp.o"
  "CMakeFiles/waveck_common.dir/time.cpp.o.d"
  "libwaveck_common.a"
  "libwaveck_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waveck_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
