# Empty dependencies file for waveck_common.
# This may be replaced when dependencies are built.
