file(REMOVE_RECURSE
  "libwaveck_common.a"
)
