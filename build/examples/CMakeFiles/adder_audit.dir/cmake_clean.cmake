file(REMOVE_RECURSE
  "CMakeFiles/adder_audit.dir/adder_audit.cpp.o"
  "CMakeFiles/adder_audit.dir/adder_audit.cpp.o.d"
  "adder_audit"
  "adder_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adder_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
