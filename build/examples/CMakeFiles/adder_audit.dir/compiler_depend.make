# Empty compiler generated dependencies file for adder_audit.
# This may be replaced when dependencies are built.
