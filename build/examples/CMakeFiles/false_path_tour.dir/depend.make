# Empty dependencies file for false_path_tour.
# This may be replaced when dependencies are built.
