file(REMOVE_RECURSE
  "CMakeFiles/false_path_tour.dir/false_path_tour.cpp.o"
  "CMakeFiles/false_path_tour.dir/false_path_tour.cpp.o.d"
  "false_path_tour"
  "false_path_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/false_path_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
