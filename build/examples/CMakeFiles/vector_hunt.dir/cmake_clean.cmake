file(REMOVE_RECURSE
  "CMakeFiles/vector_hunt.dir/vector_hunt.cpp.o"
  "CMakeFiles/vector_hunt.dir/vector_hunt.cpp.o.d"
  "vector_hunt"
  "vector_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
