# Empty compiler generated dependencies file for vector_hunt.
# This may be replaced when dependencies are built.
