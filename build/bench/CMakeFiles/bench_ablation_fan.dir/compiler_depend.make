# Empty compiler generated dependencies file for bench_ablation_fan.
# This may be replaced when dependencies are built.
