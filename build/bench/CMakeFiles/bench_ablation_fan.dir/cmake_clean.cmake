file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fan.dir/bench_ablation_fan.cpp.o"
  "CMakeFiles/bench_ablation_fan.dir/bench_ablation_fan.cpp.o.d"
  "bench_ablation_fan"
  "bench_ablation_fan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
