file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_carry_skip.dir/bench_fig2_carry_skip.cpp.o"
  "CMakeFiles/bench_fig2_carry_skip.dir/bench_fig2_carry_skip.cpp.o.d"
  "bench_fig2_carry_skip"
  "bench_fig2_carry_skip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_carry_skip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
