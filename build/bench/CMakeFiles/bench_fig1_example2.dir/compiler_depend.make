# Empty compiler generated dependencies file for bench_fig1_example2.
# This may be replaced when dependencies are built.
