# Empty compiler generated dependencies file for bench_baseline_paths.
# This may be replaced when dependencies are built.
