file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_paths.dir/bench_baseline_paths.cpp.o"
  "CMakeFiles/bench_baseline_paths.dir/bench_baseline_paths.cpp.o.d"
  "bench_baseline_paths"
  "bench_baseline_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
