# Empty compiler generated dependencies file for bench_dominator_effect.
# This may be replaced when dependencies are built.
