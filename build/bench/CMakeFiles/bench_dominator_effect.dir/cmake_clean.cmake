file(REMOVE_RECURSE
  "CMakeFiles/bench_dominator_effect.dir/bench_dominator_effect.cpp.o"
  "CMakeFiles/bench_dominator_effect.dir/bench_dominator_effect.cpp.o.d"
  "bench_dominator_effect"
  "bench_dominator_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dominator_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
