
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_stages.cpp" "bench/CMakeFiles/bench_ablation_stages.dir/bench_ablation_stages.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_stages.dir/bench_ablation_stages.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sta/CMakeFiles/waveck_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/waveck_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/waveck_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/waveck_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/waveck_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/waveform/CMakeFiles/waveck_waveform.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/waveck_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/waveck_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/waveck_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
