file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stages.dir/bench_ablation_stages.cpp.o"
  "CMakeFiles/bench_ablation_stages.dir/bench_ablation_stages.cpp.o.d"
  "bench_ablation_stages"
  "bench_ablation_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
