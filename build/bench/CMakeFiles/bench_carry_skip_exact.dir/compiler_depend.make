# Empty compiler generated dependencies file for bench_carry_skip_exact.
# This may be replaced when dependencies are built.
