file(REMOVE_RECURSE
  "CMakeFiles/bench_carry_skip_exact.dir/bench_carry_skip_exact.cpp.o"
  "CMakeFiles/bench_carry_skip_exact.dir/bench_carry_skip_exact.cpp.o.d"
  "bench_carry_skip_exact"
  "bench_carry_skip_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_carry_skip_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
